// Package ocb implements an OCB-style synthetic workload family (after
// Darmont et al.'s generic object-oriented benchmark): a parameterized
// object-base generator — class-hierarchy depth/fanout, reference
// distributions (uniform, Zipfian hot/cold, locality-clustered) — and a
// read-only transaction generator producing the four OCB operation kinds
// (set-oriented scan, simple traversal, hierarchy traversal along
// inheritance links, stochastic traversal along configuration links).
//
// The generator plugs into the engine behind the workload.Source seam, so
// OCB runs snapshot/restore and record/replay exactly like the paper's OCT
// workload. Because every OCB operation is a read, a recorded OCB stream
// replayed under two different policy wirings must produce identical
// logical results — the property the differential oracle
// (internal/oracle) turns into an executable check.
package ocb

import "fmt"

// RefDist selects how object references (and run-time traversal roots) are
// distributed over the object base.
type RefDist uint8

const (
	// DistUniform draws references uniformly over all earlier objects.
	DistUniform RefDist = iota
	// DistZipf draws references with a Zipfian hot/cold skew: recently
	// created objects are hot, old ones form a long cold tail.
	DistZipf
	// DistClustered draws references from a sliding locality window, so
	// structurally close objects are also close in creation order.
	DistClustered

	numRefDists
)

// RefDists lists the distributions in experiment order.
var RefDists = []RefDist{DistUniform, DistZipf, DistClustered}

// String names the distribution.
func (d RefDist) String() string {
	switch d {
	case DistUniform:
		return "uniform"
	case DistZipf:
		return "zipf"
	case DistClustered:
		return "clustered"
	}
	return fmt.Sprintf("RefDist(%d)", uint8(d))
}

// ParseRefDist resolves a distribution name.
func ParseRefDist(s string) (RefDist, error) {
	for _, d := range RefDists {
		if d.String() == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("ocb: unknown reference distribution %q (want uniform, zipf, or clustered)", s)
}

// Params parameterizes the OCB object base and operation mix. The zero
// value means "use the defaults" — WithDefaults fills every unset field, so
// a Config can embed a zero Params and still be valid.
type Params struct {
	// --- Class hierarchy ---

	// HierarchyDepth is the depth of the class lattice below the abstract
	// root class (default 3).
	HierarchyDepth int
	// HierarchyFanout is the number of subclasses under each non-leaf
	// class (default 2). Instances are drawn from the leaf classes.
	HierarchyFanout int

	// --- Object base ---

	// BaseSize is the mean object size in bytes before jitter (default 200).
	BaseSize int
	// SizeSpread is the +/- uniform jitter applied to object sizes
	// (default 80).
	SizeSpread int
	// RefsPerObject is the number of configuration references each object
	// holds to earlier-created objects (default 3). References always point
	// backwards in creation order, so the configuration graph is acyclic by
	// construction.
	RefsPerObject int
	// RefDist selects the reference distribution.
	RefDist RefDist
	// ZipfS is the Zipf skew exponent for DistZipf (> 1; default 2).
	ZipfS float64
	// LocalityWindow is the creation-order window for DistClustered
	// (default 64).
	LocalityWindow int
	// VersionChainMax bounds derive-chain lengths (default 3); chains are
	// the inheritance links hierarchy traversals walk.
	VersionChainMax int
	// VersionFraction is the probability an object roots a version chain
	// (default 0.15).
	VersionFraction float64

	// --- Operations ---

	// Depth bounds traversal depth for simple and stochastic traversals
	// (1..8, default 3).
	Depth int
	// ScanSample is the number of extent objects one set-oriented scan
	// touches (default 30).
	ScanSample int
	// WeightScan..WeightStochastic set the operation mix (defaults
	// 1/4/2/3).
	WeightScan, WeightSimple, WeightHierarchy, WeightStochastic int
	// SessionMin and SessionMax bound the transactions per user session
	// (defaults 5 and 20, matching the OCT workload's session model).
	SessionMin, SessionMax int
}

// DefaultParams returns the fully defaulted parameter set.
func DefaultParams() Params { return Params{}.WithDefaults() }

// WithDefaults fills every unset field with its default.
func (p Params) WithDefaults() Params {
	if p.HierarchyDepth <= 0 {
		p.HierarchyDepth = 3
	}
	if p.HierarchyFanout <= 0 {
		p.HierarchyFanout = 2
	}
	if p.BaseSize <= 0 {
		p.BaseSize = 200
	}
	if p.SizeSpread < 0 {
		p.SizeSpread = 0
	} else if p.SizeSpread == 0 {
		p.SizeSpread = 80
	}
	if p.RefsPerObject <= 0 {
		p.RefsPerObject = 3
	}
	if p.ZipfS <= 1 {
		p.ZipfS = 2
	}
	if p.LocalityWindow <= 0 {
		p.LocalityWindow = 64
	}
	if p.VersionChainMax <= 0 {
		p.VersionChainMax = 3
	}
	if p.VersionFraction <= 0 {
		p.VersionFraction = 0.15
	}
	if p.Depth <= 0 {
		p.Depth = 3
	}
	if p.ScanSample <= 0 {
		p.ScanSample = 30
	}
	if p.WeightScan+p.WeightSimple+p.WeightHierarchy+p.WeightStochastic <= 0 {
		p.WeightScan, p.WeightSimple, p.WeightHierarchy, p.WeightStochastic = 1, 4, 2, 3
	}
	if p.SessionMin <= 0 {
		p.SessionMin = 5
	}
	if p.SessionMax < p.SessionMin {
		p.SessionMax = 20
		if p.SessionMax < p.SessionMin {
			p.SessionMax = p.SessionMin
		}
	}
	return p
}

// Validate reports parameter errors. Call it on a defaulted copy.
func (p Params) Validate() error {
	switch {
	case p.HierarchyDepth < 1 || p.HierarchyDepth > 6:
		return fmt.Errorf("ocb: HierarchyDepth %d out of range [1,6]", p.HierarchyDepth)
	case p.HierarchyFanout < 1 || p.HierarchyFanout > 8:
		return fmt.Errorf("ocb: HierarchyFanout %d out of range [1,8]", p.HierarchyFanout)
	case p.BaseSize < 32:
		return fmt.Errorf("ocb: BaseSize %d below minimum 32", p.BaseSize)
	case p.RefsPerObject < 1 || p.RefsPerObject > 16:
		return fmt.Errorf("ocb: RefsPerObject %d out of range [1,16]", p.RefsPerObject)
	case p.RefDist >= numRefDists:
		return fmt.Errorf("ocb: unknown RefDist %d", p.RefDist)
	case p.ZipfS <= 1:
		return fmt.Errorf("ocb: ZipfS %g must exceed 1", p.ZipfS)
	case p.Depth < 1 || p.Depth > 8:
		return fmt.Errorf("ocb: Depth %d out of range [1,8]", p.Depth)
	case p.ScanSample < 1:
		return fmt.Errorf("ocb: ScanSample %d must be positive", p.ScanSample)
	case p.WeightScan < 0 || p.WeightSimple < 0 || p.WeightHierarchy < 0 || p.WeightStochastic < 0:
		return fmt.Errorf("ocb: operation weights must be non-negative")
	case p.WeightScan+p.WeightSimple+p.WeightHierarchy+p.WeightStochastic == 0:
		return fmt.Errorf("ocb: at least one operation weight must be positive")
	case p.SessionMin < 1 || p.SessionMax < p.SessionMin:
		return fmt.Errorf("ocb: session bounds [%d,%d] invalid", p.SessionMin, p.SessionMax)
	}
	return nil
}

// Label renders the distribution-bearing label used in experiment rows.
func (p Params) Label() string {
	d := p.WithDefaults()
	return fmt.Sprintf("ocb-%s-r%d-d%d", d.RefDist, d.RefsPerObject, d.Depth)
}
