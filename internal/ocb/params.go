// Package ocb implements an OCB-style synthetic workload family (after
// Darmont et al.'s generic object-oriented benchmark): a parameterized
// object-base generator — class-hierarchy depth/fanout, reference
// distributions (uniform, Zipfian hot/cold, locality-clustered) — and an
// operation generator producing the four OCB read kinds (set-oriented
// scan, simple traversal, hierarchy traversal along inheritance links,
// stochastic traversal along configuration links) plus, when
// Params.ReadWriteRatio enables them, the four full-OCB evolution kinds
// (object insert, subtree delete, attribute update, reference rewiring).
//
// The generator plugs into the engine behind the workload.Source seam, so
// OCB runs snapshot/restore and record/replay exactly like the paper's OCT
// workload. With the default read-only mix, a recorded OCB stream replayed
// under two different policy wirings must produce identical logical
// results; with writes enabled the same property holds for synchronous
// (lock-free) execution, because every draw — including write targets and
// payload-size classes — is resolved at generation time. The differential
// oracle (internal/oracle) turns both into executable checks, adding
// per-write conservation invariants and a final-state digest for the
// write-enabled case.
package ocb

import "fmt"

// RefDist selects how object references (and run-time traversal roots) are
// distributed over the object base.
type RefDist uint8

const (
	// DistUniform draws references uniformly over all earlier objects.
	DistUniform RefDist = iota
	// DistZipf draws references with a Zipfian hot/cold skew: recently
	// created objects are hot, old ones form a long cold tail.
	DistZipf
	// DistClustered draws references from a sliding locality window, so
	// structurally close objects are also close in creation order.
	DistClustered

	numRefDists
)

// RefDists lists the distributions in experiment order.
var RefDists = []RefDist{DistUniform, DistZipf, DistClustered}

// String names the distribution.
func (d RefDist) String() string {
	switch d {
	case DistUniform:
		return "uniform"
	case DistZipf:
		return "zipf"
	case DistClustered:
		return "clustered"
	}
	return fmt.Sprintf("RefDist(%d)", uint8(d))
}

// ParseRefDist resolves a distribution name.
func ParseRefDist(s string) (RefDist, error) {
	for _, d := range RefDists {
		if d.String() == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("ocb: unknown reference distribution %q (want uniform, zipf, or clustered)", s)
}

// Params parameterizes the OCB object base and operation mix. The zero
// value means "use the defaults" — WithDefaults fills every unset field, so
// a Config can embed a zero Params and still be valid.
type Params struct {
	// --- Class hierarchy ---

	// HierarchyDepth is the depth of the class lattice below the abstract
	// root class (default 3).
	HierarchyDepth int
	// HierarchyFanout is the number of subclasses under each non-leaf
	// class (default 2). Instances are drawn from the leaf classes.
	HierarchyFanout int

	// --- Object base ---

	// BaseSize is the mean object size in bytes before jitter (default 200).
	BaseSize int
	// SizeSpread is the +/- uniform jitter applied to object sizes
	// (default 80).
	SizeSpread int
	// RefsPerObject is the number of configuration references each object
	// holds to earlier-created objects (default 3). References always point
	// backwards in creation order, so the configuration graph is acyclic by
	// construction.
	RefsPerObject int
	// RefDist selects the reference distribution.
	RefDist RefDist
	// ZipfS is the Zipf skew exponent for DistZipf (> 1; default 2).
	ZipfS float64
	// LocalityWindow is the creation-order window for DistClustered
	// (default 64).
	LocalityWindow int
	// VersionChainMax bounds derive-chain lengths (default 3); chains are
	// the inheritance links hierarchy traversals walk.
	VersionChainMax int
	// VersionFraction is the probability an object roots a version chain
	// (default 0.15).
	VersionFraction float64

	// --- Operations ---

	// Depth bounds traversal depth for simple and stochastic traversals
	// (1..8, default 3).
	Depth int
	// ScanSample is the number of extent objects one set-oriented scan
	// touches (default 30).
	ScanSample int
	// WeightScan..WeightStochastic set the operation mix (defaults
	// 1/4/2/3).
	WeightScan, WeightSimple, WeightHierarchy, WeightStochastic int
	// SessionMin and SessionMax bound the transactions per user session
	// (defaults 5 and 20, matching the OCT workload's session model).
	SessionMin, SessionMax int

	// --- Writes (full-OCB evolution operations) ---

	// ReadWriteRatio is reads per write. Zero (the default) keeps the
	// classic read-only OCB mix; any positive value enables the four write
	// kinds with write probability 1/(1+ReadWriteRatio). The read-only
	// default is deliberately not filled in by WithDefaults: a zero here is
	// a meaningful configuration, and read-only streams must keep their
	// byte-identical digest contract.
	ReadWriteRatio float64
	// WeightInsert..WeightRewire set the write-operation mix (defaults
	// 3/1/4/2). Only consulted when a write is drawn, so they cost no
	// randomness on read-only runs.
	WeightInsert, WeightDelete, WeightUpdate, WeightRewire int

	// --- Hostile traffic shapes ---

	// Tenants partitions the object base into that many contiguous
	// creation-order slices; each session is pinned to one tenant drawn
	// with Zipfian skew, so a few tenants dominate the traffic
	// (default 1 = no partitioning, and no extra randomness is consumed).
	Tenants int
	// TenantSkew is the Zipf exponent of the tenant draw (> 1; default 2).
	TenantSkew float64
	// DriftPeriod, for DistClustered, replaces the random 1/16 locus
	// relocation with a deterministic working-set sweep: every DriftPeriod
	// operations the locality locus advances half a window, forcing the
	// hot set to migrate across the base (and the clusterer to chase it).
	// Zero (the default) keeps the random relocation.
	DriftPeriod int
}

// DefaultParams returns the fully defaulted parameter set.
func DefaultParams() Params { return Params{}.WithDefaults() }

// WithDefaults fills every unset field with its default.
func (p Params) WithDefaults() Params {
	if p.HierarchyDepth <= 0 {
		p.HierarchyDepth = 3
	}
	if p.HierarchyFanout <= 0 {
		p.HierarchyFanout = 2
	}
	if p.BaseSize <= 0 {
		p.BaseSize = 200
	}
	if p.SizeSpread < 0 {
		p.SizeSpread = 0
	} else if p.SizeSpread == 0 {
		p.SizeSpread = 80
	}
	if p.RefsPerObject <= 0 {
		p.RefsPerObject = 3
	}
	if p.ZipfS <= 1 {
		p.ZipfS = 2
	}
	if p.LocalityWindow <= 0 {
		p.LocalityWindow = 64
	}
	if p.VersionChainMax <= 0 {
		p.VersionChainMax = 3
	}
	if p.VersionFraction <= 0 {
		p.VersionFraction = 0.15
	}
	if p.Depth <= 0 {
		p.Depth = 3
	}
	if p.ScanSample <= 0 {
		p.ScanSample = 30
	}
	if p.WeightScan+p.WeightSimple+p.WeightHierarchy+p.WeightStochastic <= 0 {
		p.WeightScan, p.WeightSimple, p.WeightHierarchy, p.WeightStochastic = 1, 4, 2, 3
	}
	if p.SessionMin <= 0 {
		p.SessionMin = 5
	}
	if p.SessionMax < p.SessionMin {
		p.SessionMax = 20
		if p.SessionMax < p.SessionMin {
			p.SessionMax = p.SessionMin
		}
	}
	if p.WeightInsert+p.WeightDelete+p.WeightUpdate+p.WeightRewire <= 0 {
		p.WeightInsert, p.WeightDelete, p.WeightUpdate, p.WeightRewire = 3, 1, 4, 2
	}
	if p.Tenants <= 0 {
		p.Tenants = 1
	}
	if p.TenantSkew <= 1 {
		p.TenantSkew = 2
	}
	if p.DriftPeriod < 0 {
		p.DriftPeriod = 0
	}
	return p
}

// Validate reports parameter errors. Call it on a defaulted copy.
func (p Params) Validate() error {
	switch {
	case p.HierarchyDepth < 1 || p.HierarchyDepth > 6:
		return fmt.Errorf("ocb: HierarchyDepth %d out of range [1,6]", p.HierarchyDepth)
	case p.HierarchyFanout < 1 || p.HierarchyFanout > 8:
		return fmt.Errorf("ocb: HierarchyFanout %d out of range [1,8]", p.HierarchyFanout)
	case p.BaseSize < 32:
		return fmt.Errorf("ocb: BaseSize %d below minimum 32", p.BaseSize)
	case p.RefsPerObject < 1 || p.RefsPerObject > 16:
		return fmt.Errorf("ocb: RefsPerObject %d out of range [1,16]", p.RefsPerObject)
	case p.RefDist >= numRefDists:
		return fmt.Errorf("ocb: unknown RefDist %d", p.RefDist)
	case p.ZipfS <= 1:
		return fmt.Errorf("ocb: ZipfS %g must exceed 1", p.ZipfS)
	case p.Depth < 1 || p.Depth > 8:
		return fmt.Errorf("ocb: Depth %d out of range [1,8]", p.Depth)
	case p.ScanSample < 1:
		return fmt.Errorf("ocb: ScanSample %d must be positive", p.ScanSample)
	case p.WeightScan < 0 || p.WeightSimple < 0 || p.WeightHierarchy < 0 || p.WeightStochastic < 0:
		return fmt.Errorf("ocb: operation weights must be non-negative")
	case p.WeightScan+p.WeightSimple+p.WeightHierarchy+p.WeightStochastic == 0:
		return fmt.Errorf("ocb: at least one operation weight must be positive")
	case p.SessionMin < 1 || p.SessionMax < p.SessionMin:
		return fmt.Errorf("ocb: session bounds [%d,%d] invalid", p.SessionMin, p.SessionMax)
	case p.ReadWriteRatio < 0:
		return fmt.Errorf("ocb: ReadWriteRatio %g must be non-negative", p.ReadWriteRatio)
	case p.WeightInsert < 0 || p.WeightDelete < 0 || p.WeightUpdate < 0 || p.WeightRewire < 0:
		return fmt.Errorf("ocb: write-operation weights must be non-negative")
	case p.ReadWriteRatio > 0 && p.WeightInsert+p.WeightDelete+p.WeightUpdate+p.WeightRewire == 0:
		return fmt.Errorf("ocb: writes enabled but every write-operation weight is zero")
	case p.Tenants < 1 || p.Tenants > 1024:
		return fmt.Errorf("ocb: Tenants %d out of range [1,1024]", p.Tenants)
	case p.TenantSkew <= 1:
		return fmt.Errorf("ocb: TenantSkew %g must exceed 1", p.TenantSkew)
	case p.DriftPeriod < 0:
		return fmt.Errorf("ocb: DriftPeriod %d must be non-negative", p.DriftPeriod)
	}
	return nil
}

// Label renders the distribution-bearing label used in experiment rows.
func (p Params) Label() string {
	d := p.WithDefaults()
	l := fmt.Sprintf("ocb-%s-r%d-d%d", d.RefDist, d.RefsPerObject, d.Depth)
	if d.ReadWriteRatio > 0 {
		l += fmt.Sprintf("-rw%g", d.ReadWriteRatio)
	}
	if d.Tenants > 1 {
		l += fmt.Sprintf("-t%d", d.Tenants)
	}
	if d.DriftPeriod > 0 {
		l += fmt.Sprintf("-drift%d", d.DriftPeriod)
	}
	return l
}
