package ocb

import (
	"fmt"

	"oodb/internal/model"
)

// GeneratorState is the serializable state of an OCB Generator. The
// generated object base is regenerated deterministically from configuration
// at resume time; the state captures what the run added on top: the
// counters, the clustered-locality cursor, the session's tenant, and the
// run-time tails of the Order and Extents indexes (objects created by
// QOCBInsert executions via NoteCreated — the indexes are append-only, so
// the tail past the generated prefix is exactly the run-time growth).
// Params is state, not configuration: the phased workload changes the
// read/write ratio mid-run. The random stream is a named kernel stream,
// restored by the kernel.
type GeneratorState struct {
	Params Params
	Locus  int
	Tenant int
	Reads  int
	Writes int
	Kinds  [NumOps]int

	OrderTail   []model.ObjectID
	ExtentTails [][]model.ObjectID
}

// Snapshot captures the generator state.
func (gen *Generator) Snapshot() GeneratorState {
	s := GeneratorState{
		Params:      gen.p,
		Locus:       gen.locus,
		Tenant:      gen.tenant,
		Reads:       gen.reads,
		Writes:      gen.writes,
		Kinds:       gen.kinds,
		OrderTail:   append([]model.ObjectID(nil), gen.base.Order[gen.initOrder:]...),
		ExtentTails: make([][]model.ObjectID, len(gen.base.Extents)),
	}
	for i, ext := range gen.base.Extents {
		s.ExtentTails[i] = append([]model.ObjectID(nil), ext[gen.initExt[i]:]...)
	}
	return s
}

// Restore overwrites the generator state and re-applies the run-time index
// growth on top of the freshly regenerated base.
func (gen *Generator) Restore(s GeneratorState) error {
	if s.Locus < 0 || s.Reads < 0 || s.Writes < 0 || s.Tenant < 0 {
		return fmt.Errorf("ocb: snapshot counters negative (locus=%d tenant=%d reads=%d writes=%d)",
			s.Locus, s.Tenant, s.Reads, s.Writes)
	}
	if len(s.ExtentTails) != 0 && len(s.ExtentTails) != len(gen.base.Extents) {
		return fmt.Errorf("ocb: snapshot has %d extent tails, base has %d extents",
			len(s.ExtentTails), len(gen.base.Extents))
	}
	gen.p = s.Params.WithDefaults()
	gen.locus = s.Locus
	gen.tenant = s.Tenant
	gen.reads = s.Reads
	gen.writes = s.Writes
	gen.kinds = s.Kinds
	gen.base.Order = append(gen.base.Order[:gen.initOrder], s.OrderTail...)
	for i := range gen.base.Extents {
		var tail []model.ObjectID
		if i < len(s.ExtentTails) {
			tail = s.ExtentTails[i]
		}
		gen.base.Extents[i] = append(gen.base.Extents[i][:gen.initExt[i]], tail...)
	}
	return nil
}
