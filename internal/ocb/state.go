package ocb

import "fmt"

// GeneratorState is the serializable state of an OCB Generator. The object
// base itself is immutable (the workload is read-only) and regenerated
// deterministically from configuration at resume time; only the generator's
// counters and the clustered-locality cursor are state. The random stream
// is a named kernel stream, restored by the kernel.
type GeneratorState struct {
	Params Params
	Locus  int
	Reads  int
	Kinds  [NumOps]int
}

// Snapshot captures the generator state.
func (gen *Generator) Snapshot() GeneratorState {
	return GeneratorState{
		Params: gen.p,
		Locus:  gen.locus,
		Reads:  gen.reads,
		Kinds:  gen.kinds,
	}
}

// Restore overwrites the generator state.
func (gen *Generator) Restore(s GeneratorState) error {
	if s.Locus < 0 || s.Reads < 0 {
		return fmt.Errorf("ocb: snapshot counters negative (locus=%d reads=%d)", s.Locus, s.Reads)
	}
	gen.p = s.Params.WithDefaults()
	gen.locus = s.Locus
	gen.reads = s.Reads
	gen.kinds = s.Kinds
	return nil
}
