package workload

import (
	"math/rand"
	"reflect"
	"testing"

	"oodb/internal/model"
)

// TestGeneratorDeterminism asserts the workload contract checkpointing
// depends on: two fresh generators over the same database, with the same
// parameters and the same seed, emit the identical transaction stream.
func TestGeneratorDeterminism(t *testing.T) {
	spec := DefaultDBSpec(MedDensity, 1<<20)
	db, err := Generate(spec, 4096)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(MedDensity, 10)

	const n = 2000
	streams := make([][]Op, 2)
	for i := range streams {
		gen := NewGenerator(db, p, rand.New(rand.NewSource(42)))
		streams[i] = make([]Op, 0, n)
		for j := 0; j < n; j++ {
			txn := gen.Next()
			txn.Targets = append([]model.ObjectID(nil), txn.Targets...)
			streams[i] = append(streams[i], txn)
		}
	}
	for j := 0; j < n; j++ {
		if !reflect.DeepEqual(streams[0][j], streams[1][j]) {
			t.Fatalf("transaction %d diverged:\n%+v\n%+v", j, streams[0][j], streams[1][j])
		}
	}
}

// TestGeneratorSnapshotResume asserts that restoring a generator snapshot
// into a fresh generator (with the rng rewound to the same position)
// continues the identical stream — the property the engine's checkpoint
// relies on for the workload layer.
func TestGeneratorSnapshotResume(t *testing.T) {
	spec := DefaultDBSpec(MedDensity, 1<<20)
	db, err := Generate(spec, 4096)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(MedDensity, 10)

	gen := NewGenerator(db, p, rand.New(rand.NewSource(7)))
	const k, n = 500, 1000
	for i := 0; i < k; i++ {
		gen.Next()
	}
	snap := gen.Snapshot()
	rest := make([]Op, 0, n-k)
	for i := k; i < n; i++ {
		txn := gen.Next()
		txn.Targets = append([]model.ObjectID(nil), txn.Targets...)
		rest = append(rest, txn)
	}

	// A fresh generator with the rng advanced to the snapshot position.
	rng := rand.New(rand.NewSource(7))
	gen2 := NewGenerator(db, p, rng)
	for i := 0; i < k; i++ {
		gen2.Next() // burn the same draws; state overwritten below
	}
	if err := gen2.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for i := 0; i < n-k; i++ {
		txn := gen2.Next()
		if !reflect.DeepEqual(txn.Target, rest[i].Target) || txn.Kind != rest[i].Kind {
			t.Fatalf("transaction %d after restore diverged: %+v vs %+v", k+i, txn, rest[i])
		}
	}
}
