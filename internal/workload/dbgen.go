package workload

import (
	"fmt"
	"math/rand"

	"oodb/internal/model"
	"oodb/internal/storage"
)

// DBSpec sizes and shapes the synthetic engineering database. The shape
// mirrors the OCT world of Section 3: design families with several
// representation types (layout/netlist/transistor), two-level configuration
// hierarchies (cells containing blocks containing nets/terminals/paths),
// version chains on the design roots, and correspondences between
// representations of the same design.
type DBSpec struct {
	// TargetBytes is the approximate total object volume to generate
	// (500 MB in the paper; experiments scale it down).
	TargetBytes int
	// Density drives configuration fan-outs.
	Density DensityClass
	// RepTypes is the number of representation types per design family.
	RepTypes int
	// VersionChainMax bounds the version-chain length of design roots.
	VersionChainMax int
	// SizeSpread is the +/- uniform jitter applied to object base sizes.
	SizeSpread int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultDBSpec returns the experiment defaults for a density class and
// database volume.
func DefaultDBSpec(density DensityClass, targetBytes int) DBSpec {
	return DBSpec{
		TargetBytes:     targetBytes,
		Density:         density,
		RepTypes:        3,
		VersionChainMax: 3,
		SizeSpread:      80,
		Seed:            1,
	}
}

// Schema holds the generated type lattice.
type Schema struct {
	// DesignObject is the abstract supertype all representations inherit
	// from; it defines the attributes shared across the lattice.
	DesignObject model.TypeID
	// RootTypes are the representation types of design roots (layout,
	// netlist, transistor, ...).
	RootTypes []model.TypeID
	// BlockType is the mid-level composite type.
	BlockType model.TypeID
	// LeafTypes are the primitive component types (net, terminal, path).
	LeafTypes []model.TypeID
}

// Database is a generated object base with the index slices the transaction
// generator draws targets from.
type Database struct {
	Graph  *model.Graph
	Store  *storage.Manager
	Schema Schema

	// Roots are current design-root versions (composite, versioned,
	// corresponded objects).
	Roots []model.ObjectID
	// Blocks are mid-level composites.
	Blocks []model.ObjectID
	// Leaves are primitive components.
	Leaves []model.ObjectID

	// Families holds, per design family, the object creation sequence
	// (parents precede children). The engine replays these — interleaved
	// across families, the way months of real design work interleave — to
	// construct the physical database through the clustering policy under
	// test, so every policy's database reflects what that policy would have
	// built (Section 4.1's "sample database used by all the buffering and
	// clustering algorithms").
	Families [][]model.ObjectID

	// Bytes is the total object volume generated.
	Bytes int
}

var repTypeNames = []string{"layout", "netlist", "transistor", "symbolic", "schematic"}
var leafTypeNames = []string{"net", "terminal", "path"}

// buildSchema defines the type lattice with the traversal-frequency
// profiles and inherited attributes the clustering algorithm consumes.
func buildSchema(g *model.Graph) (Schema, error) {
	var s Schema
	var err error
	// Abstract supertype: carries attributes every representation inherits.
	// "revision-history" is large and rarely touched — the copy-vs-reference
	// cost model should implement it by reference; "props" is small and hot —
	// it should stay by copy.
	s.DesignObject, err = g.DefineType("design-object", model.NilType, 0,
		model.FreqProfile{}, []model.AttrDef{
			{Name: "props", Size: 32, AccessFreq: 0.8},
		})
	if err != nil {
		return s, err
	}
	rootFreq := model.FreqProfile{}
	rootFreq[model.ConfigDown] = 0.55
	rootFreq[model.Correspondence] = 0.18
	rootFreq[model.VersionAncestor] = 0.12
	rootFreq[model.VersionDescendant] = 0.05
	rootFreq[model.InheritanceRef] = 0.10
	for i := 0; i < len(repTypeNames); i++ {
		id, err := g.DefineType(repTypeNames[i], s.DesignObject, 240, rootFreq,
			[]model.AttrDef{
				{Name: "geometry", Size: 96, AccessFreq: 0.4},
				{Name: "revision-history", Size: 512, AccessFreq: 0.05},
			})
		if err != nil {
			return s, err
		}
		s.RootTypes = append(s.RootTypes, id)
	}
	blockFreq := model.FreqProfile{}
	blockFreq[model.ConfigDown] = 0.45
	blockFreq[model.ConfigUp] = 0.30
	blockFreq[model.Correspondence] = 0.05
	blockFreq[model.VersionAncestor] = 0.05
	blockFreq[model.InheritanceRef] = 0.15
	var err2 error
	s.BlockType, err2 = g.DefineType("block", s.DesignObject, 180, blockFreq, nil)
	if err2 != nil {
		return s, err2
	}
	leafFreq := model.FreqProfile{}
	leafFreq[model.ConfigUp] = 0.60
	leafFreq[model.Correspondence] = 0.10
	leafFreq[model.InheritanceRef] = 0.05
	for _, n := range leafTypeNames {
		id, err := g.DefineType(n, s.DesignObject, 100, leafFreq, nil)
		if err != nil {
			return s, err
		}
		s.LeafTypes = append(s.LeafTypes, id)
	}
	return s, nil
}

// Generate builds the object graph — no physical placement happens here;
// the engine replays the creation sequences through the clustering policy
// under test. The same seed yields the same graph, so every policy under
// comparison sees an identical logical database.
func Generate(spec DBSpec, pageSize int) (*Database, error) {
	g := model.NewGraph()
	st := storage.NewManager(g, pageSize)
	schema, err := buildSchema(g)
	if err != nil {
		return nil, err
	}
	db := &Database{Graph: g, Store: st, Schema: schema}
	rng := rand.New(rand.NewSource(spec.Seed))

	var seq []model.ObjectID
	jitter := func(o *model.Object) {
		if spec.SizeSpread > 0 {
			o.Size += rng.Intn(2*spec.SizeSpread) - spec.SizeSpread
			if o.Size < 32 {
				o.Size = 32
			}
		}
		db.Bytes += o.Size
		seq = append(seq, o.ID)
	}

	family := 0
	for db.Bytes < spec.TargetBytes {
		family++
		seq = nil
		name := fmt.Sprintf("D%d", family)
		reps := spec.RepTypes
		if reps < 1 {
			reps = 1
		}
		if reps > len(schema.RootTypes) {
			reps = len(schema.RootTypes)
		}
		var familyRoots []model.ObjectID
		for r := 0; r < reps; r++ {
			root, err := g.NewObject(name, 1, schema.RootTypes[r])
			if err != nil {
				return nil, err
			}
			jitter(root)
			// Two-level configuration: root -> blocks -> leaves.
			nblocks := spec.Density.FanOut(rng)
			for b := 0; b < nblocks; b++ {
				blk, err := g.NewObject(fmt.Sprintf("%s.b%d", name, b), 1, schema.BlockType)
				if err != nil {
					return nil, err
				}
				jitter(blk)
				if err := g.Attach(root.ID, blk.ID); err != nil {
					return nil, err
				}
				nleaves := spec.Density.FanOut(rng)
				for l := 0; l < nleaves; l++ {
					lt := schema.LeafTypes[rng.Intn(len(schema.LeafTypes))]
					leaf, err := g.NewObject(fmt.Sprintf("%s.b%d.l%d", name, b, l), 1, lt)
					if err != nil {
						return nil, err
					}
					jitter(leaf)
					if err := g.Attach(blk.ID, leaf.ID); err != nil {
						return nil, err
					}
					db.Leaves = append(db.Leaves, leaf.ID)
				}
				db.Blocks = append(db.Blocks, blk.ID)
			}
			// Version chain on the root; descendants share the ancestor's
			// components plus one fresh block, as checkins do.
			cur := root
			chain := 1 + rng.Intn(spec.VersionChainMax)
			for v := 1; v < chain; v++ {
				next, err := g.Derive(cur.ID)
				if err != nil {
					return nil, err
				}
				jitter(next)
				for _, c := range cur.Components {
					if rng.Float64() < 0.7 {
						if err := g.Attach(next.ID, c); err != nil {
							return nil, err
						}
					}
				}
				cur = next
			}
			familyRoots = append(familyRoots, cur.ID)
			db.Roots = append(db.Roots, cur.ID)
		}
		// Correspondences between the representations of the family.
		for i := 0; i < len(familyRoots); i++ {
			for j := i + 1; j < len(familyRoots); j++ {
				if err := g.Correspond(familyRoots[i], familyRoots[j]); err != nil {
					return nil, err
				}
			}
		}
		db.Families = append(db.Families, seq)
	}
	return db, nil
}

// ConstructionOrder interleaves the families' creation sequences into a
// single database-construction order: short bursts of work on randomly
// chosen designs, the way a shared CAD database accumulates over months.
// Parents still precede their children (each family's internal order is
// preserved), so the clustering algorithm always has the structural
// neighbors of a new object available as placement candidates.
func (db *Database) ConstructionOrder(rng *rand.Rand, burstMax int) []model.ObjectID {
	if burstMax < 1 {
		burstMax = 1
	}
	total := 0
	pos := make([]int, len(db.Families))
	live := make([]int, 0, len(db.Families))
	for i, f := range db.Families {
		total += len(f)
		if len(f) > 0 {
			live = append(live, i)
		}
	}
	out := make([]model.ObjectID, 0, total)
	for len(live) > 0 {
		li := rng.Intn(len(live))
		f := live[li]
		burst := 1 + rng.Intn(burstMax)
		for b := 0; b < burst && pos[f] < len(db.Families[f]); b++ {
			out = append(out, db.Families[f][pos[f]])
			pos[f]++
		}
		if pos[f] >= len(db.Families[f]) {
			live[li] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	return out
}
