package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"oodb/internal/model"
)

func TestDensityClassFanOut(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		if f := LowDensity.FanOut(rng); f < 1 || f > 3 {
			t.Fatalf("low fanout %d", f)
		}
		if f := MedDensity.FanOut(rng); f < 4 || f > 9 {
			t.Fatalf("med fanout %d", f)
		}
		if f := HighDensity.FanOut(rng); f < 10 || f > 16 {
			t.Fatalf("high fanout %d", f)
		}
	}
}

func TestDensityAndKindStrings(t *testing.T) {
	if LowDensity.String() != "low-3" || MedDensity.Short() != "med5" || HighDensity.String() != "high-10" {
		t.Fatal("density names wrong")
	}
	if QCheckout.String() != "checkout" || QScan.String() != "scan" {
		t.Fatal("query kind names wrong")
	}
	if !QInsert.IsWrite() || !QDerive.IsWrite() || QScan.IsWrite() || QCheckout.IsWrite() {
		t.Fatal("IsWrite classification wrong")
	}
	if p := DefaultParams(MedDensity, 10); p.Label() != "med5-10" {
		t.Fatalf("label=%q", p.Label())
	}
}

func TestGenerateShape(t *testing.T) {
	spec := DefaultDBSpec(MedDensity, 1<<20)
	db, err := Generate(spec, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if db.Bytes < 1<<20 {
		t.Fatalf("generated %d bytes, want >= target", db.Bytes)
	}
	if len(db.Roots) == 0 || len(db.Blocks) == 0 || len(db.Leaves) == 0 {
		t.Fatal("index slices empty")
	}
	if len(db.Families) == 0 {
		t.Fatal("no creation sequences")
	}
	// Objects are all unplaced (placement is the engine's job).
	placed := 0
	db.Graph.ForEachObject(func(o *model.Object) {
		if db.Store.PageOf(o.ID) != 0 {
			placed++
		}
	})
	if placed != 0 {
		t.Fatalf("%d objects placed during generation", placed)
	}
	// Roots are composite, versioned where chains exist, and correspond to
	// their sibling representations.
	root := db.Graph.Object(db.Roots[0])
	if root == nil || len(root.Components) == 0 {
		t.Fatal("root has no components")
	}
	if len(root.Correspondents) == 0 {
		t.Fatal("root has no correspondences")
	}
	// Fan-outs respect the density class at generation time.
	for _, b := range db.Blocks[:50] {
		o := db.Graph.Object(b)
		if len(o.Components) > 16 {
			t.Fatalf("block fanout %d out of range", len(o.Components))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := DefaultDBSpec(LowDensity, 1<<19)
	a, err := Generate(spec, 4096)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumObjects() != b.Graph.NumObjects() || a.Bytes != b.Bytes {
		t.Fatal("same spec must generate identical databases")
	}
}

func TestConstructionOrder(t *testing.T) {
	spec := DefaultDBSpec(MedDensity, 1<<20)
	db, err := Generate(spec, 4096)
	if err != nil {
		t.Fatal(err)
	}
	order := db.ConstructionOrder(rand.New(rand.NewSource(3)), 4)
	if len(order) != db.Graph.NumObjects() {
		t.Fatalf("order covers %d of %d objects", len(order), db.Graph.NumObjects())
	}
	seen := make(map[model.ObjectID]bool, len(order))
	for _, id := range order {
		if seen[id] {
			t.Fatalf("object %d appears twice", id)
		}
		seen[id] = true
	}
	// The property the clusterer relies on: when a component is placed, at
	// least one of its composites is already placed. (Derived versions
	// attach *earlier* components, so not every composite precedes.)
	pos := make(map[model.ObjectID]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	for _, id := range order {
		o := db.Graph.Object(id)
		if len(o.Composites) == 0 {
			continue
		}
		earliest := len(order)
		for _, comp := range o.Composites {
			if p, ok := pos[comp]; ok && p < earliest {
				earliest = p
			}
		}
		if earliest > pos[id] {
			t.Fatalf("component %d placed before any of its composites", id)
		}
	}
}

// Property: the generator's long-run read/write transaction mix matches the
// configured ratio.
func TestGeneratorReadWriteRatio(t *testing.T) {
	spec := DefaultDBSpec(MedDensity, 1<<20)
	db, err := Generate(spec, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for _, rw := range []float64{1, 5, 10, 100} {
		gen := NewGenerator(db, DefaultParams(MedDensity, rw), rand.New(rand.NewSource(9)))
		const n = 20000
		for i := 0; i < n; i++ {
			tx := gen.Next()
			if tx.Kind != QInsert && tx.Kind != QScan && tx.Target == model.NilObject {
				t.Fatalf("transaction without target: %+v", tx)
			}
		}
		reads, writes := gen.Counts()
		if reads+writes != n {
			t.Fatalf("counts %d+%d", reads, writes)
		}
		got := float64(reads) / float64(writes)
		if math.Abs(got-rw)/rw > 0.25 {
			t.Fatalf("rw=%g: measured %.2f", rw, got)
		}
	}
}

func TestGeneratorSessionLength(t *testing.T) {
	spec := DefaultDBSpec(LowDensity, 1<<19)
	db, _ := Generate(spec, 4096)
	gen := NewGenerator(db, DefaultParams(LowDensity, 10), rand.New(rand.NewSource(2)))
	for i := 0; i < 1000; i++ {
		if l := gen.SessionLength(); l < 5 || l > 20 {
			t.Fatalf("session length %d", l)
		}
	}
}

func TestGeneratorNoteCreated(t *testing.T) {
	spec := DefaultDBSpec(LowDensity, 1<<19)
	db, _ := Generate(spec, 4096)
	gen := NewGenerator(db, DefaultParams(LowDensity, 10), rand.New(rand.NewSource(2)))
	nb, nl, nr := len(db.Blocks), len(db.Leaves), len(db.Roots)
	b, _ := db.Graph.NewObject("b", 1, db.Schema.BlockType)
	l, _ := db.Graph.NewObject("l", 1, db.Schema.LeafTypes[0])
	r, _ := db.Graph.NewObject("r", 1, db.Schema.RootTypes[0])
	gen.NoteCreated(b.ID, b.Type)
	gen.NoteCreated(l.ID, l.Type)
	gen.NoteCreated(r.ID, r.Type)
	if len(db.Blocks) != nb+1 || len(db.Leaves) != nl+1 || len(db.Roots) != nr+1 {
		t.Fatal("NoteCreated misrouted")
	}
}

// Property: every generated transaction kind is valid and scans carry a
// non-empty target list.
func TestGeneratorTxnsWellFormed(t *testing.T) {
	spec := DefaultDBSpec(HighDensity, 1<<20)
	db, err := Generate(spec, 4096)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		gen := NewGenerator(db, DefaultParams(HighDensity, 10), rand.New(rand.NewSource(seed)))
		for i := 0; i < 300; i++ {
			tx := gen.Next()
			if tx.Kind >= NumQueryKinds {
				return false
			}
			switch tx.Kind {
			case QScan:
				if len(tx.Targets) == 0 {
					return false
				}
			case QInsert:
				if tx.AttachTo == model.NilObject || tx.NewType == model.NilType {
					return false
				}
			default:
				if tx.Target == model.NilObject {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
