package workload

import (
	"math/rand"

	"oodb/internal/model"
)

// Op is one operation request — the shared representation every workload
// source emits and every execution layer consumes: a kind, a target set,
// and a payload-size class. In the paper's model every object read or
// write operation is a transaction (Section 4.1); OCB reads and the full
// OCB evolution operations ride in the same shape, with all randomness
// resolved at generation time so recorded streams replay byte-identically.
type Op struct {
	Kind QueryKind
	// Target is the primary object of the operation (the composite to
	// expand, the object to update, ...). NilObject only for inserts.
	Target model.ObjectID
	// AttachTo is the composite a QInsert attaches the new object to, the
	// composite a QStructUpdate re-links Target under, or the object a
	// QOCBRewire re-attaches Target's first reference to.
	AttachTo model.ObjectID
	// NewType is the type of the object a QInsert or QOCBInsert creates.
	NewType model.TypeID
	// Targets is the operation's resolved target set: the object list of a
	// QScan/QOCBScan sweep, the pre-resolved walk of a QOCBStochastic
	// traversal, or the reference targets of a QOCBInsert.
	Targets []model.ObjectID
	// Size is the payload-size class of a write (SizeUnspecified keeps the
	// schema-implied or current size).
	Size SizeClass
}

// scanLength is the number of unrelated objects one QScan touches.
const scanLength = 30

// Generator produces transactions against a Database according to Params.
// It tracks a hot set of recently written objects so reads exhibit the
// working-set locality of real design tools, and it learns about objects the
// engine creates during the run via NoteCreated.
type Generator struct {
	db  *Database
	p   Params
	rng *rand.Rand

	hot    []model.ObjectID
	hotPos int

	reads  int
	writes int
}

// NewGenerator creates a generator drawing randomness from rng.
func NewGenerator(db *Database, p Params, rng *rand.Rand) *Generator {
	if p.SessionMin <= 0 {
		p.SessionMin = 5
	}
	if p.SessionMax < p.SessionMin {
		p.SessionMax = p.SessionMin
	}
	if p.HotSetSize <= 0 {
		p.HotSetSize = 256
	}
	return &Generator{db: db, p: p, rng: rng}
}

// Params returns the generator's parameters.
func (gen *Generator) Params() Params { return gen.p }

// SetReadWriteRatio changes the read/write ratio mid-run — Section 3.3
// observed that phases of one application (the MOSAICO phases span 0.52 to
// 170) vary wildly, and the adaptive-clustering extension needs a workload
// that actually does so. It reports whether the change took effect.
func (gen *Generator) SetReadWriteRatio(rw float64) bool {
	if rw > 0 {
		gen.p.ReadWriteRatio = rw
		return true
	}
	return false
}

// SessionLength draws the number of transactions in a user session
// (5 to 20 in the paper).
func (gen *Generator) SessionLength() int {
	return gen.p.SessionMin + gen.rng.Intn(gen.p.SessionMax-gen.p.SessionMin+1)
}

// NoteCreated records an object created during the run so later
// transactions can target it. kind routes it into the right target index.
func (gen *Generator) NoteCreated(id model.ObjectID, t model.TypeID) {
	switch {
	case t == gen.db.Schema.BlockType:
		gen.db.Blocks = append(gen.db.Blocks, id)
	case gen.isRootType(t):
		gen.db.Roots = append(gen.db.Roots, id)
	default:
		gen.db.Leaves = append(gen.db.Leaves, id)
	}
	gen.touch(id)
}

func (gen *Generator) isRootType(t model.TypeID) bool {
	for _, rt := range gen.db.Schema.RootTypes {
		if rt == t {
			return true
		}
	}
	return false
}

// touch adds an object to the hot ring.
func (gen *Generator) touch(id model.ObjectID) {
	if len(gen.hot) < gen.p.HotSetSize {
		gen.hot = append(gen.hot, id)
		return
	}
	gen.hot[gen.hotPos] = id
	gen.hotPos = (gen.hotPos + 1) % len(gen.hot)
}

func pick(r *rand.Rand, s []model.ObjectID) model.ObjectID {
	if len(s) == 0 {
		return model.NilObject
	}
	return s[r.Intn(len(s))]
}

// pickAlive draws from s, skipping objects that have been deleted (the
// index slices are append-only and may hold stale IDs).
func (gen *Generator) pickAlive(s []model.ObjectID) model.ObjectID {
	for try := 0; try < 8; try++ {
		id := pick(gen.rng, s)
		if id == model.NilObject {
			return model.NilObject
		}
		if gen.db.Graph.Object(id) != nil {
			return id
		}
	}
	return model.NilObject
}

// pickHot returns a hot object satisfying accept, or NilObject.
func (gen *Generator) pickHot(accept func(model.ObjectID) bool) model.ObjectID {
	if len(gen.hot) == 0 || gen.rng.Float64() >= gen.p.HotFraction {
		return model.NilObject
	}
	for try := 0; try < 4; try++ {
		id := gen.hot[gen.rng.Intn(len(gen.hot))]
		if gen.db.Graph.Object(id) == nil {
			continue
		}
		if accept == nil || accept(id) {
			return id
		}
	}
	return model.NilObject
}

func (gen *Generator) pickComposite() model.ObjectID {
	isComposite := func(id model.ObjectID) bool {
		o := gen.db.Graph.Object(id)
		return o != nil && len(o.Components) > 0
	}
	if id := gen.pickHot(isComposite); id != model.NilObject {
		return id
	}
	if gen.rng.Intn(3) == 0 {
		if id := gen.pickAlive(gen.db.Roots); id != model.NilObject {
			return id
		}
	}
	if id := gen.pickAlive(gen.db.Blocks); id != model.NilObject {
		return id
	}
	return gen.pickAlive(gen.db.Roots)
}

func (gen *Generator) pickComponent() model.ObjectID {
	isComponent := func(id model.ObjectID) bool {
		o := gen.db.Graph.Object(id)
		return o != nil && len(o.Composites) > 0
	}
	if id := gen.pickHot(isComponent); id != model.NilObject {
		return id
	}
	if gen.rng.Intn(2) == 0 {
		if id := gen.pickAlive(gen.db.Leaves); id != model.NilObject {
			return id
		}
	}
	return gen.pickAlive(gen.db.Blocks)
}

func (gen *Generator) pickRoot() model.ObjectID {
	if id := gen.pickHot(func(id model.ObjectID) bool {
		o := gen.db.Graph.Object(id)
		return o != nil && gen.isRootType(o.Type)
	}); id != model.NilObject {
		return id
	}
	return gen.pickAlive(gen.db.Roots)
}

// Next draws the next transaction. The write probability is 1/(1+RW) so the
// long-run read/write transaction ratio matches the parameter.
func (gen *Generator) Next() Op {
	if gen.rng.Float64() < 1/(1+gen.p.ReadWriteRatio) {
		gen.writes++
		return gen.nextWrite()
	}
	gen.reads++
	return gen.nextRead()
}

// Counts returns the generated read and write transaction counts.
func (gen *Generator) Counts() (reads, writes int) { return gen.reads, gen.writes }

func (gen *Generator) nextRead() Op {
	var t Op
	switch x := gen.rng.Float64(); {
	case x < 0.04:
		// Batch-tool sweep over uniformly random (mostly cold) objects.
		scan := make([]model.ObjectID, 0, scanLength)
		for i := 0; i < scanLength; i++ {
			if id := gen.pickAlive(gen.db.Leaves); id != model.NilObject {
				scan = append(scan, id)
			}
		}
		if len(scan) > 0 {
			return Op{Kind: QScan, Target: scan[0], Targets: scan}
		}
		fallthrough
	case x < 0.14:
		t = Op{Kind: QCheckout, Target: gen.pickRoot()}
	case x < 0.48:
		t = Op{Kind: QComponentRetrieval, Target: gen.pickComposite()}
	case x < 0.60:
		t = Op{Kind: QSimpleLookup, Target: gen.pickComponent()}
	case x < 0.72:
		t = Op{Kind: QCompositeRetrieval, Target: gen.pickComponent()}
	case x < 0.84:
		t = Op{Kind: QCorresponding, Target: gen.pickRoot()}
	case x < 0.92:
		t = Op{Kind: QDescendantVersion, Target: gen.pickRoot()}
	default:
		t = Op{Kind: QAncestorVersion, Target: gen.pickRoot()}
	}
	if t.Target == model.NilObject {
		t = Op{Kind: QSimpleLookup, Target: gen.pickAlive(gen.db.Blocks)}
	}
	gen.touch(t.Target)
	return t
}

func (gen *Generator) nextWrite() Op {
	var t Op
	switch x := gen.rng.Float64(); {
	case x < 0.45:
		// Insert a new leaf (or block) under a composite being worked on.
		parent := gen.pickComposite()
		nt := gen.db.Schema.LeafTypes[gen.rng.Intn(len(gen.db.Schema.LeafTypes))]
		if po := gen.db.Graph.Object(parent); po != nil && gen.isRootType(po.Type) {
			nt = gen.db.Schema.BlockType
		}
		t = Op{Kind: QInsert, AttachTo: parent, NewType: nt}
	case x < 0.63:
		t = Op{Kind: QUpdate, Target: gen.pickComponent()}
	case x < 0.82:
		// Re-link a component under a different composite.
		t = Op{Kind: QStructUpdate, Target: gen.pickComponent(), AttachTo: gen.pickComposite()}
	case x < 0.92:
		t = Op{Kind: QDerive, Target: gen.pickRoot()}
	default:
		t = Op{Kind: QDelete, Target: gen.pickAlive(gen.db.Leaves)}
	}
	if t.Kind != QInsert && t.Target == model.NilObject {
		t = Op{Kind: QInsert, AttachTo: gen.pickAlive(gen.db.Blocks),
			NewType: gen.db.Schema.LeafTypes[0]}
	}
	if t.Target != model.NilObject {
		gen.touch(t.Target)
	}
	if t.AttachTo != model.NilObject {
		gen.touch(t.AttachTo)
	}
	return t
}
