// Package workload implements the paper's workload model (Section 4): a
// synthetic engineering database built over the Version Data Model, and a
// transaction generator producing the seven query types of engineering
// design applications, controlled by the structure-density and
// read/write-ratio parameters of Table 4.1.
package workload

import (
	"fmt"
	"math/rand"
)

// DensityClass is control parameter F: how many component (or composite)
// objects a structural retrieval returns.
type DensityClass uint8

const (
	// LowDensity: every structural retrieval returns at most 3 objects.
	LowDensity DensityClass = iota
	// MedDensity: between 4 and 9 objects.
	MedDensity
	// HighDensity: 10 or more objects.
	HighDensity
)

// String names the class as in the paper's figures.
func (d DensityClass) String() string {
	switch d {
	case LowDensity:
		return "low-3"
	case MedDensity:
		return "med-5"
	case HighDensity:
		return "high-10"
	}
	return fmt.Sprintf("DensityClass(%d)", d)
}

// Short returns the abbreviated label used in figure axes ("lo3", "med5",
// "hi10").
func (d DensityClass) Short() string {
	switch d {
	case LowDensity:
		return "lo3"
	case MedDensity:
		return "med5"
	case HighDensity:
		return "hi10"
	}
	return "?"
}

// FanOut draws a configuration fan-out for the class: low 1–3, medium 4–9,
// high 10–16, matching the bucket boundaries of Figure 3.4 and the
// operating-level definitions under Table 4.1.
func (d DensityClass) FanOut(r *rand.Rand) int {
	switch d {
	case LowDensity:
		return 1 + r.Intn(3)
	case MedDensity:
		return 4 + r.Intn(6)
	default:
		return 10 + r.Intn(7)
	}
}

// Densities lists the classes in figure order.
var Densities = []DensityClass{LowDensity, MedDensity, HighDensity}

// QueryKind enumerates the seven engineering-design query types of
// Section 4.1 (writes are one class in the paper; the generator
// distinguishes the flavors so structure updates can trigger reclustering).
type QueryKind uint8

const (
	// QSimpleLookup reads one object by name.
	QSimpleLookup QueryKind = iota
	// QComponentRetrieval reads a composite and its component objects
	// (downward structural access; fan-out = structure density).
	QComponentRetrieval
	// QCompositeRetrieval reads a component and its composite object(s)
	// (upward structural access; usually one object, per Section 3.4).
	QCompositeRetrieval
	// QDescendantVersion reads an object and its descendant versions.
	QDescendantVersion
	// QAncestorVersion reads an object and its ancestor version.
	QAncestorVersion
	// QCorresponding reads an object and all objects corresponding to it.
	QCorresponding
	// QInsert creates a new object and attaches it to an existing composite.
	QInsert
	// QUpdate modifies an existing object in place (no structure change).
	QUpdate
	// QStructUpdate changes an object's structural relationships, the
	// trigger for run-time reclustering.
	QStructUpdate
	// QDerive checks in a new version of an existing object.
	QDerive
	// QScan is a batch-tool sweep over unrelated objects — the kind of
	// whole-design consistency scan Section 3.5 observed in SPARCS. Scans
	// are what punish recency-only replacement.
	QScan
	// QCheckout materializes a full object hierarchy (root, components, and
	// their components) — the checkout operation whose cost the paper's
	// introduction calls the bottleneck of design applications.
	QCheckout
	// QDelete removes a leaf object (Section 4.1's write class is "object
	// insertion/deletion/updating").
	QDelete

	// The OCB operation kinds (internal/ocb). The trace format validates
	// kinds against NumQueryKinds, so appending here keeps recorded OCT
	// traces readable while letting OCB streams record/replay through the
	// same machinery.

	// QOCBScan is an OCB set-oriented scan over one class extent; the
	// sampled extent slice rides in Op.Targets.
	QOCBScan
	// QOCBSimple is an OCB simple traversal: a depth-bounded walk along
	// configuration references from Op.Target.
	QOCBSimple
	// QOCBHierarchy is an OCB hierarchy traversal: from Op.Target up the
	// inheritance (version-derivation) chain.
	QOCBHierarchy
	// QOCBStochastic is an OCB stochastic traversal: a pre-resolved random
	// walk along configuration references, carried in Op.Targets.
	QOCBStochastic

	// The OCB write kinds (full-OCB evolution operations). All randomness —
	// class choice, reference targets, payload-size class — is resolved at
	// generation time into the Op so a recorded stream replays
	// byte-identically under any policy.

	// QOCBInsert creates a new object under the class of Op.NewType, wired
	// to the pre-drawn reference targets in Op.Targets; Op.Size classes the
	// payload.
	QOCBInsert
	// QOCBDelete removes the configuration subtree rooted at Op.Target
	// (bottom-up, skipping shared components).
	QOCBDelete
	// QOCBUpdate rewrites the attribute payload of Op.Target; Op.Size is the
	// new payload-size class (a resize re-places the object).
	QOCBUpdate
	// QOCBRewire detaches Op.Target's first configuration reference and
	// re-attaches it under Op.AttachTo, churning the configuration graph.
	QOCBRewire

	// NumQueryKinds is the number of query kinds.
	NumQueryKinds
)

var queryKindNames = [NumQueryKinds]string{
	"simple-lookup", "component-retrieval", "composite-retrieval",
	"descendant-version", "ancestor-version", "corresponding",
	"insert", "update", "struct-update", "derive", "scan", "checkout", "delete",
	"ocb-scan", "ocb-simple", "ocb-hierarchy", "ocb-stochastic",
	"ocb-insert", "ocb-delete", "ocb-update", "ocb-rewire",
}

// String names the query kind.
func (k QueryKind) String() string {
	if int(k) < len(queryKindNames) {
		return queryKindNames[k]
	}
	return fmt.Sprintf("QueryKind(%d)", uint8(k))
}

// IsWrite reports whether the query kind counts as a write transaction for
// the read/write ratio.
func (k QueryKind) IsWrite() bool {
	switch k {
	case QInsert, QUpdate, QStructUpdate, QDerive, QDelete,
		QOCBInsert, QOCBDelete, QOCBUpdate, QOCBRewire:
		return true
	}
	return false
}

// SizeClass is the payload-size class an operation carries: sources resolve
// the size draw at generation time and the engine maps the class to bytes
// deterministically, so the size never needs a second RNG draw at execution.
// SizeUnspecified (the zero value) means "keep the object's current size" —
// the OCT write kinds, whose sizes are implied by the schema, leave it zero
// so their streams stay byte-identical to pre-refactor recordings.
type SizeClass uint8

const (
	// SizeUnspecified keeps the current/default payload size.
	SizeUnspecified SizeClass = iota
	// SizeSmall is a payload around half the workload's base object size.
	SizeSmall
	// SizeMedium is a payload around the base object size.
	SizeMedium
	// SizeLarge is a payload around 1.5x the base object size.
	SizeLarge

	// NumSizeClasses is the number of size classes.
	NumSizeClasses
)

var sizeClassNames = [NumSizeClasses]string{"unspecified", "small", "medium", "large"}

// String names the size class.
func (s SizeClass) String() string {
	if int(s) < len(sizeClassNames) {
		return sizeClassNames[s]
	}
	return fmt.Sprintf("SizeClass(%d)", uint8(s))
}

// Params controls the transaction generator.
type Params struct {
	// Density is the structure-density class (parameter F).
	Density DensityClass
	// ReadWriteRatio is reads per write (parameter G: 5, 10, or 100 in the
	// paper's sweeps).
	ReadWriteRatio float64
	// SessionMin and SessionMax bound the transactions per user session
	// (5 to 20 in the paper).
	SessionMin, SessionMax int
	// HotFraction is the probability a read targets the recently written
	// working set rather than a uniformly random object, modeling the
	// paper's observation that design tools navigate the structures they
	// are actively building.
	HotFraction float64
	// HotSetSize bounds the recent-target ring.
	HotSetSize int
}

// DefaultParams returns the experiment defaults for a density class and
// read/write ratio.
func DefaultParams(d DensityClass, rw float64) Params {
	return Params{
		Density:        d,
		ReadWriteRatio: rw,
		SessionMin:     5,
		SessionMax:     20,
		HotFraction:    0.7,
		HotSetSize:     256,
	}
}

// Label renders the figure-axis label for a workload class, e.g. "lo3-5"
// or "hi10-100".
func (p Params) Label() string {
	return fmt.Sprintf("%s-%g", p.Density.Short(), p.ReadWriteRatio)
}
