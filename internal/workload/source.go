package workload

import "oodb/internal/model"

// Source is the workload seam: the engine pulls transactions from a Source
// without knowing which workload family produced them. The OCT generator
// (Generator, this package) and the OCB generator (internal/ocb) both
// implement it.
//
// Implementations must draw all randomness from the *rand.Rand they were
// constructed with — the engine hands them a named kernel stream so
// checkpoint restore rewinds them — and must resolve any randomized
// target lists at generation time (into Op.Targets) so a recorded stream
// replays byte-identically.
type Source interface {
	// Next draws the next operation.
	Next() Op
	// SessionLength draws the number of transactions in a user session.
	SessionLength() int
	// NoteCreated tells the source an object was created during execution,
	// so later transactions can target it. Read-only sources ignore it.
	NoteCreated(id model.ObjectID, t model.TypeID)
	// SetReadWriteRatio adjusts the read/write mix mid-run (phased
	// workloads) and reports whether the change took effect. A source that
	// cannot honor the requested mix must return false — a silent no-op is
	// not an acceptable implementation — so callers can surface the
	// "unsupported" signal instead of believing the phase change happened.
	SetReadWriteRatio(rw float64) bool
	// Counts reports how many read and write operations were generated.
	Counts() (reads, writes int)
}

var _ Source = (*Generator)(nil)
