package workload

import (
	"fmt"

	"oodb/internal/model"
)

// GeneratorState is the serializable state of a workload Generator plus the
// database target indexes it draws from. The indexes (Blocks/Roots/Leaves)
// belong to the Database but mutate only through the generator's
// NoteCreated, so they checkpoint with it. Params is state, not
// configuration: the phased workload changes the read/write ratio mid-run.
// The random stream is a named kernel stream, restored by the kernel.
type GeneratorState struct {
	Params Params
	Hot    []model.ObjectID
	HotPos int
	Reads  int
	Writes int

	Blocks []model.ObjectID
	Roots  []model.ObjectID
	Leaves []model.ObjectID
}

// Snapshot captures the generator and database-index state.
func (gen *Generator) Snapshot() GeneratorState {
	return GeneratorState{
		Params: gen.p,
		Hot:    append([]model.ObjectID(nil), gen.hot...),
		HotPos: gen.hotPos,
		Reads:  gen.reads,
		Writes: gen.writes,
		Blocks: append([]model.ObjectID(nil), gen.db.Blocks...),
		Roots:  append([]model.ObjectID(nil), gen.db.Roots...),
		Leaves: append([]model.ObjectID(nil), gen.db.Leaves...),
	}
}

// Restore overwrites the generator and the database target indexes.
func (gen *Generator) Restore(s GeneratorState) error {
	if s.HotPos < 0 || (s.HotPos != 0 && s.HotPos >= len(s.Hot)) {
		return fmt.Errorf("workload: snapshot hot-ring position %d out of range", s.HotPos)
	}
	gen.p = s.Params
	gen.hot = append(gen.hot[:0], s.Hot...)
	gen.hotPos = s.HotPos
	gen.reads = s.Reads
	gen.writes = s.Writes
	gen.db.Blocks = append(gen.db.Blocks[:0], s.Blocks...)
	gen.db.Roots = append(gen.db.Roots[:0], s.Roots...)
	gen.db.Leaves = append(gen.db.Leaves[:0], s.Leaves...)
	return nil
}
