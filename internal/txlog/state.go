package txlog

import "fmt"

// State is the serializable state of the log manager: buffer fill and
// accumulated statistics. Per-transaction before-image coalescing sets are
// not representable — they exist only while a transaction is open — so the
// manager can only be snapshotted between transactions.
type State struct {
	BufSize int
	Used    int
	Stats   Stats
}

// Snapshot captures the manager's state. It returns an error while any
// transaction is open: an open coalescing set cannot be serialized.
func (m *Manager) Snapshot() (State, error) {
	if len(m.touched) > 0 {
		return State{}, fmt.Errorf("txlog: %d transactions still open", len(m.touched))
	}
	return State{BufSize: m.bufSize, Used: m.used, Stats: m.stats}, nil
}

// Restore overwrites the manager's state. The buffer capacity must match,
// and the manager must have no open transactions.
func (m *Manager) Restore(s State) error {
	if s.BufSize != m.bufSize {
		return fmt.Errorf("txlog: snapshot buffer size %d, manager has %d", s.BufSize, m.bufSize)
	}
	if len(m.touched) > 0 {
		return fmt.Errorf("txlog: restore with %d transactions open", len(m.touched))
	}
	if s.Used < 0 || s.Used > m.bufSize {
		return fmt.Errorf("txlog: snapshot buffer fill %d out of range", s.Used)
	}
	m.used = s.Used
	m.stats = s.Stats
	return nil
}
