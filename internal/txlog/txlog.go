// Package txlog models the paper's transaction-logging component: a
// circular in-memory log buffer that accumulates per-object log records and
// flushes to the log disk when full, plus per-transaction before-image
// accounting — the first update a transaction makes to a page forces one
// physical I/O to log the original page, and further updates to the same
// page within the transaction ride for free.
//
// That coalescing is why clustering reduces logging I/Os (Figure 5.5): when
// related objects share a page, a transaction's multiple updates tend to hit
// the same page.
package txlog

import (
	"fmt"

	"oodb/internal/obs"
	"oodb/internal/storage"
)

// recordHeader is the fixed per-record overhead in bytes.
const recordHeader = 16

// Stats aggregates log activity.
type Stats struct {
	Records        int // log records appended
	BufferFlushes  int // physical I/Os from the circular buffer filling
	BeforeImageIOs int // physical I/Os logging a page's original image
	BytesLogged    int
	Aborts         int // transactions abandoned via Abort
}

// IOs returns the total physical logging I/Os.
func (s Stats) IOs() int { return s.BufferFlushes + s.BeforeImageIOs }

// Manager is the log manager. It is purely an accounting model: no bytes
// are materialized.
type Manager struct {
	bufSize int // circular buffer capacity in bytes
	used    int
	stats   Stats

	// touched tracks, per open transaction, the set of pages whose original
	// image has already been logged.
	touched map[int]map[storage.PageID]struct{}

	// dur, when set, receives every transaction boundary so commits and
	// aborts become durable write-ahead-log records. Nil (the default)
	// keeps the manager a pure accounting model.
	dur storage.TxnLog

	rec obs.Recorder // nil = uninstrumented
}

// SetRecorder installs the instrumentation hook; nil disables it.
func (m *Manager) SetRecorder(r obs.Recorder) { m.rec = r }

// SetDurable forwards transaction boundaries to a durable log; nil
// disables forwarding.
func (m *Manager) SetDurable(d storage.TxnLog) { m.dur = d }

// NewManager creates a log manager with the given circular-buffer capacity
// in bytes.
func NewManager(bufSize int) *Manager {
	if bufSize <= 0 {
		panic("txlog: buffer size must be positive")
	}
	return &Manager{
		bufSize: bufSize,
		touched: make(map[int]map[storage.PageID]struct{}),
	}
}

// Begin opens transaction txn. Beginning an already-open transaction is an
// error (it would silently merge two transactions' coalescing sets).
func (m *Manager) Begin(txn int) error {
	if _, ok := m.touched[txn]; ok {
		return fmt.Errorf("txlog: transaction %d already open", txn)
	}
	m.touched[txn] = make(map[storage.PageID]struct{}, 4)
	if m.dur != nil {
		if err := m.dur.LogBegin(txn); err != nil {
			delete(m.touched, txn) // the transaction never opened
			return err
		}
	}
	return nil
}

// Append records that transaction txn created or modified an object of
// objSize bytes residing on page pg. It returns the number of physical log
// I/Os the append triggered (0, 1, or 2): one if this is the transaction's
// first update to pg (before-image), and one if the circular buffer
// overflowed and was flushed.
func (m *Manager) Append(txn int, objSize int, pg storage.PageID) (ios int, err error) {
	set, ok := m.touched[txn]
	if !ok {
		return 0, fmt.Errorf("txlog: transaction %d not open", txn)
	}
	if pg != storage.NilPage {
		if _, seen := set[pg]; !seen {
			set[pg] = struct{}{}
			m.stats.BeforeImageIOs++
			ios++
			if m.rec != nil {
				m.rec.Count(obs.LogBeforeImage, 1)
			}
		} else if m.rec != nil {
			// A repeat update to an already-imaged page rides for free — the
			// coalescing clustering is supposed to produce (Figure 5.5).
			m.rec.Count(obs.LogCoalesce, 1)
		}
	}
	rec := recordHeader + objSize
	m.stats.Records++
	m.stats.BytesLogged += rec
	if m.used+rec > m.bufSize {
		m.stats.BufferFlushes++
		ios++
		m.used = 0
		if m.rec != nil {
			m.rec.Count(obs.LogBufferFlush, 1)
		}
	}
	m.used += rec
	return ios, nil
}

// End commits transaction txn, discarding its coalescing set. With a
// durable log installed, the commit record is appended (and fsynced per
// the backend's policy) before End returns.
func (m *Manager) End(txn int) error {
	if _, ok := m.touched[txn]; !ok {
		return fmt.Errorf("txlog: transaction %d not open", txn)
	}
	delete(m.touched, txn)
	if m.dur != nil {
		return m.dur.LogCommit(txn)
	}
	return nil
}

// Abort abandons transaction txn: its coalescing set is discarded and,
// with a durable log installed, an abort record is appended so recovery
// never replays its mutations.
func (m *Manager) Abort(txn int) error {
	if _, ok := m.touched[txn]; !ok {
		return fmt.Errorf("txlog: transaction %d not open", txn)
	}
	delete(m.touched, txn)
	m.stats.Aborts++
	if m.dur != nil {
		return m.dur.LogAbort(txn)
	}
	return nil
}

// Open returns the number of open transactions.
func (m *Manager) Open() int { return len(m.touched) }

// BufferUsed returns the bytes currently in the circular buffer.
func (m *Manager) BufferUsed() int { return m.used }

// Stats returns a copy of the statistics.
func (m *Manager) Stats() Stats { return m.stats }

// ResetStats zeroes the statistics.
func (m *Manager) ResetStats() { m.stats = Stats{} }
