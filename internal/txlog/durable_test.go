package txlog

import (
	"errors"
	"testing"
)

// fakeTxnLog records forwarded transaction boundaries, with optional
// injected failures.
type fakeTxnLog struct {
	begins, commits, aborts []int
	failBegin               error
}

func (f *fakeTxnLog) LogBegin(txn int) error {
	if f.failBegin != nil {
		return f.failBegin
	}
	f.begins = append(f.begins, txn)
	return nil
}
func (f *fakeTxnLog) LogCommit(txn int) error { f.commits = append(f.commits, txn); return nil }
func (f *fakeTxnLog) LogAbort(txn int) error  { f.aborts = append(f.aborts, txn); return nil }

func TestDurableForwarding(t *testing.T) {
	m := NewManager(1024)
	d := &fakeTxnLog{}
	m.SetDurable(d)

	if err := m.Begin(1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append(1, 32, 5); err != nil {
		t.Fatal(err)
	}
	if err := m.End(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(2); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(2); err != nil {
		t.Fatal(err)
	}
	if len(d.begins) != 2 || len(d.commits) != 1 || len(d.aborts) != 1 {
		t.Fatalf("forwarded %v/%v/%v, want 2 begins, 1 commit, 1 abort", d.begins, d.commits, d.aborts)
	}
	if m.Stats().Aborts != 1 {
		t.Fatalf("aborts = %d, want 1", m.Stats().Aborts)
	}
	if m.Open() != 0 {
		t.Fatalf("open = %d, want 0", m.Open())
	}
}

// A durable-begin failure rolls the open transaction back: the manager must
// not consider it open after Begin errored.
func TestDurableBeginFailureRollsBack(t *testing.T) {
	m := NewManager(1024)
	bang := errors.New("log disk gone")
	m.SetDurable(&fakeTxnLog{failBegin: bang})
	if err := m.Begin(1); !errors.Is(err, bang) {
		t.Fatalf("Begin error = %v, want %v", err, bang)
	}
	if m.Open() != 0 {
		t.Fatal("failed Begin left the transaction open")
	}
	// The same transaction ID can be begun again once the log recovers.
	m.SetDurable(&fakeTxnLog{})
	if err := m.Begin(1); err != nil {
		t.Fatal(err)
	}
}

func TestAbortErrors(t *testing.T) {
	m := NewManager(1024)
	if err := m.Abort(9); err == nil {
		t.Fatal("abort of an unopened transaction must fail")
	}
	if err := m.Begin(3); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(3); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(3); err == nil {
		t.Fatal("double abort must fail")
	}
	if _, err := m.Append(3, 10, 1); err == nil {
		t.Fatal("append to an aborted transaction must fail")
	}
}
