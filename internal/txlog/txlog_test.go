package txlog

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oodb/internal/storage"
)

func TestBeginEnd(t *testing.T) {
	m := NewManager(1024)
	if err := m.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(1); err == nil {
		t.Fatal("double begin must fail")
	}
	if m.Open() != 1 {
		t.Fatalf("open=%d", m.Open())
	}
	if err := m.End(1); err != nil {
		t.Fatal(err)
	}
	if err := m.End(1); err == nil {
		t.Fatal("double end must fail")
	}
	if _, err := m.Append(1, 10, 1); err == nil {
		t.Fatal("append outside a transaction must fail")
	}
}

func TestBeforeImageCoalescing(t *testing.T) {
	m := NewManager(1 << 20)
	m.Begin(1) //nolint:errcheck
	ios, err := m.Append(1, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ios != 1 {
		t.Fatalf("first update to a page must log its before image: ios=%d", ios)
	}
	ios, _ = m.Append(1, 10, 5)
	if ios != 0 {
		t.Fatalf("second update to the same page must coalesce: ios=%d", ios)
	}
	ios, _ = m.Append(1, 10, 6)
	if ios != 1 {
		t.Fatalf("different page needs its own before image: ios=%d", ios)
	}
	m.End(1) //nolint:errcheck

	// A new transaction touching the same page pays again.
	m.Begin(2) //nolint:errcheck
	ios, _ = m.Append(2, 10, 5)
	if ios != 1 {
		t.Fatalf("coalescing must not span transactions: ios=%d", ios)
	}
	m.End(2) //nolint:errcheck
	st := m.Stats()
	if st.BeforeImageIOs != 3 || st.Records != 4 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCircularBufferFlush(t *testing.T) {
	m := NewManager(100) // record = 16 + objSize
	m.Begin(1)           //nolint:errcheck
	// Records of 16+34=50 bytes: two fit, third overflows.
	var flushes int
	for i := 0; i < 5; i++ {
		ios, err := m.Append(1, 34, storage.NilPage)
		if err != nil {
			t.Fatal(err)
		}
		flushes += ios
	}
	// used: 50,100, flush->50, 100, flush->50 -> 2 flushes.
	if flushes != 2 {
		t.Fatalf("flushes=%d", flushes)
	}
	if m.Stats().BufferFlushes != 2 {
		t.Fatalf("stats: %+v", m.Stats())
	}
	if m.BufferUsed() != 50 {
		t.Fatalf("used=%d", m.BufferUsed())
	}
}

func TestCircularBufferExactFit(t *testing.T) {
	// A record landing exactly on the capacity boundary must NOT flush:
	// the flush condition is used+rec > bufSize, strictly greater.
	m := NewManager(100)
	m.Begin(1) //nolint:errcheck
	ios, err := m.Append(1, 84, storage.NilPage) // record = 16+84 = 100
	if err != nil {
		t.Fatal(err)
	}
	if ios != 0 {
		t.Fatalf("exact-fit record flushed: ios=%d", ios)
	}
	if m.BufferUsed() != 100 {
		t.Fatalf("used=%d, want 100", m.BufferUsed())
	}
	// The very next record, however small, wraps the buffer.
	ios, _ = m.Append(1, 0, storage.NilPage) // record = 16
	if ios != 1 {
		t.Fatalf("post-boundary record did not flush: ios=%d", ios)
	}
	if m.BufferUsed() != 16 {
		t.Fatalf("used=%d after wrap, want 16", m.BufferUsed())
	}
}

func TestCircularBufferOversizedRecord(t *testing.T) {
	// A record larger than the whole buffer flushes on every append — even
	// the first, into an empty buffer, since it can never fit: the model
	// charges the write-through as one flush I/O each time.
	m := NewManager(50)
	m.Begin(1) //nolint:errcheck
	for i := 0; i < 3; i++ {
		ios, err := m.Append(1, 100, storage.NilPage) // record = 116 > 50
		if err != nil {
			t.Fatal(err)
		}
		if ios != 1 {
			t.Fatalf("append %d: oversized record must flush: ios=%d", i, ios)
		}
	}
	if got := m.Stats().BufferFlushes; got != 3 {
		t.Fatalf("flushes=%d, want 3", got)
	}
}

func TestCircularBufferManyWraps(t *testing.T) {
	// Long-run wraparound accounting: after N appends of fixed-size records,
	// flushes and residual bytes match the closed form.
	const bufSize, objSize, n = 128, 16, 1000
	rec := recordHeader + objSize // 32 bytes, 4 per buffer
	m := NewManager(bufSize)
	m.Begin(1) //nolint:errcheck
	flushes := 0
	for i := 0; i < n; i++ {
		ios, err := m.Append(1, objSize, storage.NilPage)
		if err != nil {
			t.Fatal(err)
		}
		flushes += ios
	}
	perBuf := bufSize / rec
	wantFlushes := (n - 1) / perBuf
	if flushes != wantFlushes {
		t.Fatalf("flushes=%d, want %d", flushes, wantFlushes)
	}
	wantUsed := rec * (1 + (n-1)%perBuf)
	if m.BufferUsed() != wantUsed {
		t.Fatalf("used=%d, want %d", m.BufferUsed(), wantUsed)
	}
	if got := m.Stats().BytesLogged; got != n*rec {
		t.Fatalf("bytes logged=%d, want %d", got, n*rec)
	}
}

func TestNilPageSkipsBeforeImage(t *testing.T) {
	m := NewManager(1 << 20)
	m.Begin(1) //nolint:errcheck
	ios, err := m.Append(1, 10, storage.NilPage)
	if err != nil {
		t.Fatal(err)
	}
	if ios != 0 {
		t.Fatalf("nil page must not charge a before image: %d", ios)
	}
}

func TestBadBufferSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewManager(0)
}

// Property: total flush count equals what a straightforward byte counter
// predicts, and before-image I/Os equal the number of distinct
// (transaction, page) update pairs.
func TestAccountingMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bufSize := 200 + rng.Intn(800)
		m := NewManager(bufSize)
		used := 0
		wantFlushes := 0
		wantImages := 0
		touched := map[[2]int]bool{}
		for txn := 0; txn < 20; txn++ {
			if err := m.Begin(txn); err != nil {
				return false
			}
			n := rng.Intn(15)
			for i := 0; i < n; i++ {
				size := rng.Intn(100)
				pg := 1 + rng.Intn(6)
				key := [2]int{txn, pg}
				if !touched[key] {
					touched[key] = true
					wantImages++
				}
				rec := recordHeader + size
				if used+rec > bufSize {
					wantFlushes++
					used = 0
				}
				used += rec
				if _, err := m.Append(txn, size, storage.PageID(pg)); err != nil {
					return false
				}
			}
			if err := m.End(txn); err != nil {
				return false
			}
		}
		st := m.Stats()
		return st.BufferFlushes == wantFlushes && st.BeforeImageIOs == wantImages &&
			st.IOs() == wantFlushes+wantImages
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
