package oct

import (
	"math/rand"
)

// ToolProfile calibrates one synthetic tool driver. The paper's real traces
// (≈5000 invocations, ≈400 hours) are unavailable; the targets below are
// taken from the published text where stated exactly (VEM's read/write
// ratio of 6000; the 0.52–170 range across the MOSAICO phases; VEM
// highest-density; Wolfe the only other tool with substantial medium/high
// density; "most of the OCT tools' downward access are dominated by low
// structure density") and estimated from the figures otherwise.
type ToolProfile struct {
	Name string
	// Desc is the tool's role, from Section 3.3.
	Desc string
	// RW is the target read/write ratio.
	RW float64
	// WritesPerRun scales the invocation size.
	WritesPerRun int
	// LowShare, MedShare, HighShare is the target downward fan-out mix.
	LowShare, MedShare, HighShare float64
	// StructureReadShare is the fraction of reads performed through
	// attachment navigation rather than simple lookups.
	StructureReadShare float64
	// IORate is the target logical I/Os per second of session time; the
	// driver back-computes the session duration from it.
	IORate float64
	// Interactive marks tools whose session time includes user interaction
	// (only VEM; batch tools exclude think time).
	Interactive bool
	// IntegrityScan enables the SPARCS-style full-design scan that checks
	// no two terminals have more than one path between them (Section 3.5's
	// example of access patterns referential integrity would eliminate).
	IntegrityScan bool
}

// Toolset returns the ten instrumented OCT tools of Figures 3.2–3.4.
func Toolset() []ToolProfile {
	return []ToolProfile{
		{Name: "vem", Desc: "graphical editor", RW: 6000, WritesPerRun: 2,
			LowShare: 0.15, MedShare: 0.25, HighShare: 0.60,
			StructureReadShare: 0.85, IORate: 25, Interactive: true},
		{Name: "wolfe", Desc: "standard cell placement and global router", RW: 60, WritesPerRun: 40,
			LowShare: 0.45, MedShare: 0.35, HighShare: 0.20,
			StructureReadShare: 0.7, IORate: 120},
		{Name: "sparcs", Desc: "symbolic layout spacer", RW: 25, WritesPerRun: 60,
			LowShare: 0.80, MedShare: 0.15, HighShare: 0.05,
			StructureReadShare: 0.75, IORate: 150, IntegrityScan: true},
		{Name: "misII", Desc: "multiple-level logic optimizer", RW: 40, WritesPerRun: 50,
			LowShare: 0.85, MedShare: 0.12, HighShare: 0.03,
			StructureReadShare: 0.6, IORate: 250},
		{Name: "bdsim", Desc: "multiple-level simulator", RW: 90, WritesPerRun: 25,
			LowShare: 0.82, MedShare: 0.15, HighShare: 0.03,
			StructureReadShare: 0.8, IORate: 350},
		{Name: "atlas", Desc: "MOSAICO phase: routing-region definition", RW: 0.52, WritesPerRun: 400,
			LowShare: 0.90, MedShare: 0.08, HighShare: 0.02,
			StructureReadShare: 0.5, IORate: 80},
		{Name: "cds", Desc: "MOSAICO phase: channel definition", RW: 3, WritesPerRun: 150,
			LowShare: 0.88, MedShare: 0.10, HighShare: 0.02,
			StructureReadShare: 0.55, IORate: 60},
		{Name: "cpre", Desc: "MOSAICO phase: routing preprocessor", RW: 8, WritesPerRun: 80,
			LowShare: 0.85, MedShare: 0.12, HighShare: 0.03,
			StructureReadShare: 0.6, IORate: 70},
		{Name: "pgcurrent", Desc: "MOSAICO phase: power/ground current analysis", RW: 1.5, WritesPerRun: 200,
			LowShare: 0.90, MedShare: 0.08, HighShare: 0.02,
			StructureReadShare: 0.5, IORate: 40},
		{Name: "mosaico", Desc: "MOSAICO phase: macro cell router", RW: 170, WritesPerRun: 20,
			LowShare: 0.75, MedShare: 0.20, HighShare: 0.05,
			StructureReadShare: 0.7, IORate: 200},
	}
}

// design is the pre-built working design a tool navigates: parent objects
// bucketed by attachment fan-out so the driver can realize its density mix.
type design struct {
	facet   ObjID
	lowFan  []ObjID // parents with 0–3 attached objects
	medFan  []ObjID // 4–10
	highFan []ObjID // 11–20
	nets    []ObjID
	terms   []ObjID
	paths   []ObjID
}

// buildDesign constructs a facet with nets, terminals and paths shaped like
// Figure 3.1's example, plus fan-out-bucketed composites.
func buildDesign(m *Manager, rng *rand.Rand) *design {
	d := &design{}
	f := m.Create(Facet)
	d.facet = f.ID
	mk := func(fan int) ObjID {
		net := m.Create(Net)
		m.Attach(f.ID, net.ID) //nolint:errcheck // fresh IDs cannot fail
		d.nets = append(d.nets, net.ID)
		for t := 0; t < fan; t++ {
			term := m.Create(Terminal)
			m.Attach(net.ID, term.ID) //nolint:errcheck
			d.terms = append(d.terms, term.ID)
			if t%2 == 0 {
				p := m.Create(Path)
				m.Attach(term.ID, p.ID) //nolint:errcheck
				d.paths = append(d.paths, p.ID)
			}
		}
		return net.ID
	}
	for i := 0; i < 30; i++ {
		d.lowFan = append(d.lowFan, mk(rng.Intn(4)))
	}
	for i := 0; i < 20; i++ {
		d.medFan = append(d.medFan, mk(4+rng.Intn(7)))
	}
	for i := 0; i < 12; i++ {
		d.highFan = append(d.highFan, mk(11+rng.Intn(10)))
	}
	return d
}

// Run executes one instrumented invocation of the tool against manager m.
func (p ToolProfile) Run(m *Manager, rng *rand.Rand) *Session {
	s := m.Begin(p.Name)
	d := buildDesign(m, rng)

	// Perform the tool's write work (a "write op" may produce both a simple
	// and a structure write, e.g. create-then-attach), interleaved with a
	// baseline of reads, then top reads up until the session's logical
	// read/write ratio matches the calibration target.
	for w := 0; w < p.WritesPerRun; w++ {
		p.doWrite(s, d, rng)
		if rng.Float64() < 0.5 {
			p.doRead(s, d, rng)
		}
	}
	if p.IntegrityScan {
		integrityScan(s, d)
	}
	targetReads := int(p.RW * float64(s.Writes()))
	if targetReads < 1 {
		targetReads = 1
	}
	for s.Reads() < targetReads {
		p.doRead(s, d, rng)
	}
	total := float64(s.Reads() + s.Writes())
	if p.IORate > 0 {
		s.Spend(total / p.IORate)
	}
	s.End()
	return s
}

func (p ToolProfile) doRead(s *Session, d *design, rng *rand.Rand) {
	if rng.Float64() >= p.StructureReadShare {
		s.Get(pickID(rng, d.terms, d.nets))
		return
	}
	var pool []ObjID
	switch x := rng.Float64(); {
	case x < p.LowShare:
		pool = d.lowFan
	case x < p.LowShare+p.MedShare:
		pool = d.medFan
	default:
		pool = d.highFan
	}
	if len(pool) == 0 {
		pool = d.lowFan
	}
	id := pool[rng.Intn(len(pool))]
	if rng.Float64() < 0.9 {
		s.GenAttached(id, NumObjTypes) // downward navigation
	} else {
		s.GenContainers(id) // upward navigation, fan-out ~1
	}
}

func (p ToolProfile) doWrite(s *Session, d *design, rng *rand.Rand) {
	switch rng.Intn(3) {
	case 0: // create and attach a new terminal: simple + structure write
		t := s.Create(Terminal)
		net := d.nets[rng.Intn(len(d.nets))]
		s.Attach(net, t.ID) //nolint:errcheck // fresh IDs cannot fail
		d.terms = append(d.terms, t.ID)
	case 1: // create and attach a path
		pa := s.Create(Path)
		if len(d.terms) > 0 {
			s.Attach(d.terms[rng.Intn(len(d.terms))], pa.ID) //nolint:errcheck
		}
		d.paths = append(d.paths, pa.ID)
	default: // in-place update
		s.Update(pickID(rng, d.terms, d.nets))
	}
}

func pickID(rng *rand.Rand, a, b []ObjID) ObjID {
	if len(a) > 0 && (len(b) == 0 || rng.Intn(2) == 0) {
		return a[rng.Intn(len(a))]
	}
	if len(b) > 0 {
		return b[rng.Intn(len(b))]
	}
	return 0
}

// integrityScan reproduces SPARCS's defensive whole-design scan: for every
// terminal, walk its paths and their terminals checking that no two
// terminals share more than one path — "a tremendous number of unnecessary
// I/Os" that referential-integrity support would eliminate (Section 3.5).
func integrityScan(s *Session, d *design) {
	for _, term := range d.terms {
		paths := s.GenAttached(term, Path)
		for _, pa := range paths {
			s.GenContainers(pa)
		}
	}
}
