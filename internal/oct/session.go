package oct

import "oodb/internal/stats"

// Session is the instrumentation wrapper the paper added around OCT: it
// brackets a tool invocation between octBegin() and octEnd(), classifying
// every operation as a structure read (retrieval through attachment links),
// simple read, structure write (attachment creation), or simple write, and
// recording the fan-out of upward and downward structural accesses.
type Session struct {
	m    *Manager
	Tool string

	// Counters at the logical level, as seen by the buffer manager.
	StructureReads  int
	SimpleReads     int
	StructureWrites int
	SimpleWrites    int

	// Fan-out histograms for structural accesses.
	Down *stats.Histogram
	Up   *stats.Histogram

	// Seconds is the session duration. Tools run in batch mode accumulate
	// it via Spend; it excludes think time as in the paper.
	Seconds float64

	// PerTypeReads counts reads by object type.
	PerTypeReads [NumObjTypes]int

	ended bool
}

// Begin opens an instrumented session for the named tool (octBegin()).
func (m *Manager) Begin(tool string) *Session {
	return &Session{
		m:    m,
		Tool: tool,
		Down: stats.NewHistogram(64),
		Up:   stats.NewHistogram(64),
	}
}

// End closes the session (octEnd()).
func (s *Session) End() { s.ended = true }

// Ended reports whether End was called.
func (s *Session) Ended() bool { return s.ended }

// Spend accrues session time in seconds.
func (s *Session) Spend(seconds float64) { s.Seconds += seconds }

// Create makes a new object (a simple write).
func (s *Session) Create(t ObjType) *Object {
	s.SimpleWrites++
	return s.m.Create(t)
}

// Get reads one object by ID (a simple read).
func (s *Session) Get(id ObjID) *Object {
	s.SimpleReads++
	o := s.m.Get(id)
	if o != nil {
		s.PerTypeReads[o.Type]++
	}
	return o
}

// Update modifies an object in place (a simple write).
func (s *Session) Update(id ObjID) bool {
	s.SimpleWrites++
	return s.m.Get(id) != nil
}

// Attach creates an attachment (a structure write).
func (s *Session) Attach(parent, child ObjID) error {
	s.StructureWrites++
	return s.m.Attach(parent, child)
}

// GenAttached retrieves the objects attached to id, optionally filtered by
// type — a downward structural access. Every object returned counts as a
// structure read; the fan-out is recorded.
func (s *Session) GenAttached(id ObjID, filter ObjType) []ObjID {
	out := s.m.AttachedOf(id, filter)
	s.StructureReads += len(out)
	s.Down.Add(len(out))
	for _, a := range out {
		if o := s.m.Get(a); o != nil {
			s.PerTypeReads[o.Type]++
		}
	}
	return out
}

// GenContainers retrieves the objects id is attached to — an upward
// structural access.
func (s *Session) GenContainers(id ObjID) []ObjID {
	out := s.m.ContainersOf(id)
	s.StructureReads += len(out)
	s.Up.Add(len(out))
	return out
}

// Reads returns total logical reads.
func (s *Session) Reads() int { return s.StructureReads + s.SimpleReads }

// Writes returns total logical writes.
func (s *Session) Writes() int { return s.StructureWrites + s.SimpleWrites }

// ReadWriteRatio returns reads per write for the session (Section 3.3's
// definition). A session with no writes returns reads as the ratio.
func (s *Session) ReadWriteRatio() float64 {
	if s.Writes() == 0 {
		return float64(s.Reads())
	}
	return float64(s.Reads()) / float64(s.Writes())
}

// IORate returns logical I/Os per second of session time (Section 3.3's
// Figure 3.3 metric).
func (s *Session) IORate() float64 {
	if s.Seconds <= 0 {
		return 0
	}
	return float64(s.Reads()+s.Writes()) / s.Seconds
}

// DensityShares returns the fractions of downward structural accesses in
// the paper's three buckets: low (0–3), medium (4–10), and high (>10).
func (s *Session) DensityShares() (low, med, high float64) {
	low = s.Down.RangeShare(0, 3)
	med = s.Down.RangeShare(4, 10)
	high = s.Down.RangeShare(11, 1<<30)
	return low, med, high
}
