// Package oct is a from-scratch re-creation of the substrate the paper's
// Section 3 measured: the Berkeley OCT data manager for VLSI/CAD tools — a
// store of primitive typed objects (facets, instances, nets, terminals,
// paths, ...) connected by arbitrary bidirectional attachments — plus the
// instrumentation layer the authors added to record tool access patterns.
//
// The real study instrumented ~5000 invocations of real CAD tools over ~400
// hours. Those traces are not available, so package toolset provides ten
// synthetic tool drivers calibrated to reproduce the published summary
// statistics (per-tool read/write ratios, I/O rates, and fan-out density
// distributions) — which is everything the downstream simulation model
// consumes from Section 3.
package oct

import (
	"errors"
	"fmt"
)

// ObjType enumerates OCT's primitive object types (the subset the paper's
// examples use).
type ObjType uint8

const (
	// Facet is the basic design unit.
	Facet ObjType = iota
	// Instance is a placed occurrence of a cell.
	Instance
	// Net is an electrical net.
	Net
	// Terminal is a connection point.
	Terminal
	// Path is a wire segment run.
	Path
	// Layer is a mask layer.
	Layer
	// Prop is a property annotation.
	Prop
	// Bag is an untyped grouping object.
	Bag

	// NumObjTypes is the number of object types.
	NumObjTypes
)

var objTypeNames = [NumObjTypes]string{
	"facet", "instance", "net", "terminal", "path", "layer", "prop", "bag",
}

// String names the object type.
func (t ObjType) String() string {
	if int(t) < len(objTypeNames) {
		return objTypeNames[t]
	}
	return fmt.Sprintf("ObjType(%d)", uint8(t))
}

// ObjID identifies an OCT object; 0 is invalid.
type ObjID uint32

// Object is one OCT object with its bidirectional attachment links. OCT
// does not validate attachment legality (the paper notes it is the user's
// responsibility) and supports no inheritance.
type Object struct {
	ID       ObjID
	Type     ObjType
	Attached []ObjID // downward: objects attached to this one
	Contains []ObjID // upward: objects this one is attached to
}

// Manager is the OCT data manager.
type Manager struct {
	objects []*Object // index 0 unused
}

// NewManager returns an empty data manager.
func NewManager() *Manager {
	return &Manager{objects: make([]*Object, 1, 256)}
}

// Errors returned by the manager.
var (
	ErrNoSuchObject = errors.New("oct: no such object")
	ErrSelfAttach   = errors.New("oct: cannot attach object to itself")
)

// Create makes a new object of the given type (a simple write when run
// under a Session).
func (m *Manager) Create(t ObjType) *Object {
	o := &Object{ID: ObjID(len(m.objects)), Type: t}
	m.objects = append(m.objects, o)
	return o
}

// Get returns the object with the given ID, or nil.
func (m *Manager) Get(id ObjID) *Object {
	if id == 0 || int(id) >= len(m.objects) {
		return nil
	}
	return m.objects[id]
}

// NumObjects returns the number of objects.
func (m *Manager) NumObjects() int { return len(m.objects) - 1 }

// Attach links child under parent (a structure write when run under a
// Session). Duplicate attachments are permitted, as in OCT.
func (m *Manager) Attach(parent, child ObjID) error {
	if parent == child {
		return ErrSelfAttach
	}
	p, c := m.Get(parent), m.Get(child)
	if p == nil || c == nil {
		return ErrNoSuchObject
	}
	p.Attached = append(p.Attached, child)
	c.Contains = append(c.Contains, parent)
	return nil
}

// AttachedOf returns the objects attached to id, optionally filtered by
// type (pass NumObjTypes for no filter).
func (m *Manager) AttachedOf(id ObjID, filter ObjType) []ObjID {
	o := m.Get(id)
	if o == nil {
		return nil
	}
	if filter >= NumObjTypes {
		return o.Attached
	}
	var out []ObjID
	for _, a := range o.Attached {
		if ao := m.Get(a); ao != nil && ao.Type == filter {
			out = append(out, a)
		}
	}
	return out
}

// ContainersOf returns the objects id is attached to.
func (m *Manager) ContainersOf(id ObjID) []ObjID {
	o := m.Get(id)
	if o == nil {
		return nil
	}
	return o.Contains
}
