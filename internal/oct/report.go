package oct

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// ToolStats summarizes the instrumented invocations of one tool.
type ToolStats struct {
	Name        string
	Invocations int
	Reads       int
	Writes      int
	RWRatio     float64
	IORate      float64
	LowShare    float64
	MedShare    float64
	HighShare   float64
}

// Trace runs `invocations` instrumented invocations of every tool in the
// toolset and aggregates per-tool statistics — the synthetic stand-in for
// the paper's 5000-invocation trace collection.
func Trace(invocations int, seed int64) []ToolStats {
	if invocations < 1 {
		invocations = 1
	}
	var out []ToolStats
	for _, p := range Toolset() {
		rng := rand.New(rand.NewSource(seed ^ int64(len(p.Name))<<32 ^ int64(p.Name[0])))
		st := ToolStats{Name: p.Name, Invocations: invocations}
		var seconds float64
		var low, med, high float64
		for i := 0; i < invocations; i++ {
			m := NewManager()
			s := p.Run(m, rng)
			st.Reads += s.Reads()
			st.Writes += s.Writes()
			seconds += s.Seconds
			l, md, h := s.DensityShares()
			low += l
			med += md
			high += h
		}
		if st.Writes > 0 {
			st.RWRatio = float64(st.Reads) / float64(st.Writes)
		} else {
			st.RWRatio = float64(st.Reads)
		}
		if seconds > 0 {
			st.IORate = float64(st.Reads+st.Writes) / seconds
		}
		n := float64(invocations)
		st.LowShare, st.MedShare, st.HighShare = low/n, med/n, high/n
		out = append(out, st)
	}
	return out
}

// Fig32 renders Figure 3.2 (per-tool read/write ratios, VEM reported
// separately as in the paper).
func Fig32(stats []ToolStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3.2 -- OCT Tools' Read-Write Ratio\n")
	fmt.Fprintf(&b, "%-12s %12s\n", "tool", "R/W ratio")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-12s %12.2f\n", s.Name, s.RWRatio)
	}
	return b.String()
}

// Fig33 renders Figure 3.3 (per-tool logical I/O rate per session second).
func Fig33(stats []ToolStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3.3 -- OCT Tools' Object I/O Rate\n")
	fmt.Fprintf(&b, "%-12s %14s\n", "tool", "I/Os per sec")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-12s %14.1f\n", s.Name, s.IORate)
	}
	return b.String()
}

// Fig34 renders Figure 3.4 (downward structural-access density
// distribution per tool, bucketed low 0–3 / medium 4–10 / high >10).
func Fig34(stats []ToolStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3.4 -- OCT Tool Structure Density Distribution\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %8s\n", "tool", "low", "med", "high")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-12s %7.1f%% %7.1f%% %7.1f%%\n",
			s.Name, s.LowShare*100, s.MedShare*100, s.HighShare*100)
	}
	return b.String()
}

// SortByRW orders stats by descending read/write ratio (presentation order
// of Figure 3.2's discussion).
func SortByRW(stats []ToolStats) {
	sort.SliceStable(stats, func(i, j int) bool { return stats[i].RWRatio > stats[j].RWRatio })
}
