package oct

import (
	"errors"
	"math/rand"
	"testing"
)

func TestManagerCreateAttach(t *testing.T) {
	m := NewManager()
	f := m.Create(Facet)
	n := m.Create(Net)
	tm := m.Create(Terminal)
	if err := m.Attach(f.ID, n.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(n.ID, tm.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(f.ID, f.ID); !errors.Is(err, ErrSelfAttach) {
		t.Errorf("self attach: %v", err)
	}
	if err := m.Attach(f.ID, 999); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("bad attach: %v", err)
	}
	if m.NumObjects() != 3 {
		t.Fatalf("objects=%d", m.NumObjects())
	}
	if got := m.AttachedOf(f.ID, NumObjTypes); len(got) != 1 || got[0] != n.ID {
		t.Fatalf("attached: %v", got)
	}
	if got := m.AttachedOf(n.ID, Terminal); len(got) != 1 {
		t.Fatalf("filtered attached: %v", got)
	}
	if got := m.AttachedOf(n.ID, Path); len(got) != 0 {
		t.Fatalf("filter should exclude: %v", got)
	}
	if got := m.ContainersOf(tm.ID); len(got) != 1 || got[0] != n.ID {
		t.Fatalf("containers: %v", got)
	}
	if m.Get(0) != nil || m.Get(100) != nil {
		t.Error("invalid lookups must return nil")
	}
}

func TestObjTypeString(t *testing.T) {
	if Facet.String() != "facet" || Net.String() != "net" || Bag.String() != "bag" {
		t.Fatal("type names wrong")
	}
	if ObjType(99).String() == "" {
		t.Fatal("unknown type should render")
	}
}

func TestSessionInstrumentation(t *testing.T) {
	m := NewManager()
	s := m.Begin("testtool")
	f := s.Create(Facet) // simple write
	n := s.Create(Net)   // simple write
	s.Attach(f.ID, n.ID) //nolint:errcheck — structure write
	for i := 0; i < 3; i++ {
		tm := s.Create(Terminal)
		s.Attach(n.ID, tm.ID) //nolint:errcheck
	}
	s.Get(f.ID)                             // simple read
	got := s.GenAttached(n.ID, NumObjTypes) // structure read x3
	if len(got) != 3 {
		t.Fatalf("attached: %v", got)
	}
	s.GenContainers(n.ID) // structure read x1
	if s.SimpleWrites != 5 || s.StructureWrites != 4 {
		t.Fatalf("writes: simple=%d structure=%d", s.SimpleWrites, s.StructureWrites)
	}
	if s.SimpleReads != 1 || s.StructureReads != 4 {
		t.Fatalf("reads: simple=%d structure=%d", s.SimpleReads, s.StructureReads)
	}
	if s.Down.Total() != 1 || s.Down.Count(3) != 1 {
		t.Fatal("downward fan-out histogram wrong")
	}
	if s.Up.Total() != 1 || s.Up.Count(1) != 1 {
		t.Fatal("upward fan-out histogram wrong")
	}
	if rw := s.ReadWriteRatio(); rw != 5.0/9.0 {
		t.Fatalf("rw=%v", rw)
	}
	s.Spend(2)
	if rate := s.IORate(); rate != 14.0/2 {
		t.Fatalf("rate=%v", rate)
	}
	s.End()
	if !s.Ended() {
		t.Fatal("End not recorded")
	}
}

func TestSessionNoWrites(t *testing.T) {
	m := NewManager()
	s := m.Begin("r")
	s.Get(1) // missing object still counts as a logical read attempt
	if s.ReadWriteRatio() != 1 {
		t.Fatalf("rw=%v", s.ReadWriteRatio())
	}
	if s.IORate() != 0 {
		t.Fatal("rate without time must be 0")
	}
}

func TestDensityShares(t *testing.T) {
	m := NewManager()
	s := m.Begin("d")
	f := s.Create(Facet)
	nets := make([]ObjID, 3)
	for i, fan := range []int{2, 6, 12} {
		net := s.Create(Net)
		s.Attach(f.ID, net.ID) //nolint:errcheck
		for j := 0; j < fan; j++ {
			tm := s.Create(Terminal)
			s.Attach(net.ID, tm.ID) //nolint:errcheck
		}
		nets[i] = net.ID
	}
	for _, n := range nets {
		s.GenAttached(n, NumObjTypes)
	}
	low, med, high := s.DensityShares()
	if low != 1.0/3 || med != 1.0/3 || high != 1.0/3 {
		t.Fatalf("shares: %v %v %v", low, med, high)
	}
}

func TestToolProfilesCalibration(t *testing.T) {
	tools := Toolset()
	if len(tools) != 10 {
		t.Fatalf("toolset size %d", len(tools))
	}
	rng := rand.New(rand.NewSource(4))
	for _, p := range tools {
		m := NewManager()
		s := p.Run(m, rng)
		if !s.Ended() {
			t.Fatalf("%s: session not ended", p.Name)
		}
		got := s.ReadWriteRatio()
		if got < p.RW*0.9 || got > p.RW*1.6 {
			t.Errorf("%s: rw=%.2f, target %.2f", p.Name, got, p.RW)
		}
		if s.Seconds <= 0 {
			t.Errorf("%s: no session time", p.Name)
		}
		rate := s.IORate()
		if ratio := rate / p.IORate; ratio < 0.99 || ratio > 1.01 {
			t.Errorf("%s: io rate %.1f, target %.1f", p.Name, rate, p.IORate)
		}
	}
}

func TestTraceMatchesPaperShape(t *testing.T) {
	stats := Trace(5, 1)
	byName := map[string]ToolStats{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	vem := byName["vem"]
	// VEM has the highest read/write ratio, around 6000 (Figure 3.2).
	for _, s := range stats {
		if s.Name != "vem" && s.RWRatio >= vem.RWRatio {
			t.Errorf("%s ratio %.0f >= vem %.0f", s.Name, s.RWRatio, vem.RWRatio)
		}
	}
	if vem.RWRatio < 4000 {
		t.Errorf("vem ratio %.0f, want ~6000", vem.RWRatio)
	}
	// VEM has the highest structure density; every non-wolfe tool is
	// low-density dominated (Figure 3.4).
	for _, s := range stats {
		if s.Name == "vem" {
			if s.HighShare < s.LowShare {
				t.Errorf("vem should be high-density dominated: %+v", s)
			}
			continue
		}
		if s.Name == "wolfe" {
			continue
		}
		if s.LowShare < 0.5 {
			t.Errorf("%s should be low-density dominated: low=%.2f", s.Name, s.LowShare)
		}
	}
	// The MOSAICO phases span the published 0.52–170 range.
	if byName["atlas"].RWRatio > 1 {
		t.Errorf("atlas ratio %.2f, want <1", byName["atlas"].RWRatio)
	}
	if byName["mosaico"].RWRatio < 150 {
		t.Errorf("mosaico ratio %.1f, want ~170", byName["mosaico"].RWRatio)
	}
}

func TestTraceDeterministic(t *testing.T) {
	a := Trace(3, 42)
	b := Trace(3, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace not deterministic: %+v vs %+v", a[i], b[i])
		}
	}
}

func TestReportRenderers(t *testing.T) {
	stats := Trace(2, 1)
	for _, out := range []string{Fig32(stats), Fig33(stats), Fig34(stats)} {
		if len(out) == 0 {
			t.Fatal("empty report")
		}
	}
	SortByRW(stats)
	for i := 1; i < len(stats); i++ {
		if stats[i].RWRatio > stats[i-1].RWRatio {
			t.Fatal("SortByRW order wrong")
		}
	}
}
