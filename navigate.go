package oodb

import "fmt"

// Navigation API: the paper observes that "object-oriented applications
// perform more navigation than ad-hoc query during run-time" (Section 3.5)
// and models design work as checkout/checkin of composite objects
// (Section 4.1). These helpers provide those operations over the buffered,
// clustered store.

// Visit is called for every object a traversal reaches, with its depth from
// the start (0 for the start object). Returning false stops the traversal.
type Visit func(o *Object, depth int) bool

// Traverse walks the structure graph from start, following the given
// relationship kinds, to at most maxDepth hops (0 = just the start object).
// Every visited object is read through the buffer manager, so traversals
// exercise — and benefit from — clustering and prefetching. Objects are
// visited breadth-first, once each, in deterministic order.
func (db *DB) Traverse(start ObjectID, kinds []RelKind, maxDepth int, visit Visit) error {
	if visit == nil {
		return fmt.Errorf("oodb: Traverse requires a visit function")
	}
	type item struct {
		id    ObjectID
		depth int
	}
	seen := map[ObjectID]bool{start: true}
	queue := []item{{start, 0}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		o, err := db.Get(it.id)
		if err != nil {
			return err
		}
		if !visit(o, it.depth) {
			return nil
		}
		if it.depth == maxDepth {
			continue
		}
		for _, k := range kinds {
			for _, n := range o.Neighbors(k) {
				if !seen[n] {
					seen[n] = true
					queue = append(queue, item{n, it.depth + 1})
				}
			}
		}
	}
	return nil
}

// Checkout materializes the full configuration hierarchy under root — the
// operation whose cost motivates the paper — returning every object in the
// hierarchy (root first, breadth-first).
func (db *DB) Checkout(root ObjectID) ([]*Object, error) {
	var out []*Object
	err := db.Traverse(root, []RelKind{ConfigDown}, 1<<30, func(o *Object, _ int) bool {
		out = append(out, o)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Checkin records a design iteration the way the paper models it
// (Section 4.1: "a checkin operation invokes some object insertions and
// updating"): it derives a new version of root that shares root's
// components, then attaches the given newly created components to the new
// version. The derived version is returned.
func (db *DB) Checkin(root ObjectID, newComponents ...ObjectID) (*Object, error) {
	old, err := db.Get(root)
	if err != nil {
		return nil, err
	}
	shared := append([]ObjectID(nil), old.Components...)
	next, err := db.Derive(root)
	if err != nil {
		return nil, err
	}
	for _, c := range shared {
		if err := db.Attach(next.ID, c); err != nil {
			return nil, fmt.Errorf("oodb: checkin sharing component %d: %w", c, err)
		}
	}
	for _, c := range newComponents {
		if err := db.Attach(next.ID, c); err != nil {
			return nil, fmt.Errorf("oodb: checkin attaching %d: %w", c, err)
		}
	}
	return next, nil
}
