package oodb

import (
	"io"

	"oodb/internal/engine"
)

// Checkpoint/restore and trace record/replay — the deterministic-resume
// API. A simulation checkpointed at transaction k and resumed produces
// byte-identical results to an uninterrupted run; a recorded transaction
// trace replays the identical logical access stream against any policy
// wiring (set SimConfig.Record / SimConfig.Replay).

// SimCheckpoint is a serialized-ready snapshot of a simulation at a
// quiescent point.
type SimCheckpoint = engine.Checkpoint

// CheckpointSimulation runs cfg until at least k transactions have
// completed and the stack is quiescent, writes a checkpoint to w, then
// finishes the run and returns its results. The results are identical to a
// plain RunSimulation of the same configuration.
func CheckpointSimulation(cfg SimConfig, k int, w io.Writer) (SimResults, error) {
	e, err := engine.New(cfg)
	if err != nil {
		return SimResults{}, err
	}
	ck, err := e.RunToCheckpoint(k)
	if err != nil {
		return SimResults{}, err
	}
	if err := engine.WriteCheckpoint(w, ck); err != nil {
		return SimResults{}, err
	}
	return e.Run()
}

// ResumeSimulation reads a checkpoint from r and finishes the run under
// cfg, which must be the configuration the checkpoint was taken with (the
// embedded fingerprint enforces this). The combined results — prefix from
// the checkpointed run, suffix from this one — are byte-identical to an
// uninterrupted run.
func ResumeSimulation(cfg SimConfig, r io.Reader) (SimResults, error) {
	ck, err := engine.ReadCheckpoint(r)
	if err != nil {
		return SimResults{}, err
	}
	e, err := engine.Resume(cfg, ck)
	if err != nil {
		return SimResults{}, err
	}
	return e.Run()
}
