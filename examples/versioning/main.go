// Versioning: instance-to-instance inheritance along version histories.
// A descendant version inherits its ancestor's correspondence relationships
// by default, and large rarely-accessed inherited attributes are
// implemented by *reference* (the clustering algorithm's cost formulas
// decide), which both shrinks the descendant and raises its
// inheritance-reference traversal frequency — pulling versions of the same
// design together on disk.
package main

import (
	"fmt"
	"log"

	"oodb"
)

func main() {
	db, err := oodb.Open(oodb.Options{
		BufferFrames: 32,
		Replacement:  oodb.ReplContext,
		Cluster:      oodb.PolicyNoLimit,
		Split:        oodb.LinearSplit,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The layout type carries a small hot attribute ("props") that should
	// stay by copy, and a large cold one ("mask-data") that the cost model
	// should implement by reference on derived versions.
	var f oodb.FreqProfile
	f[oodb.VersionAncestor] = 0.5
	f[oodb.ConfigDown] = 0.2
	layout, err := db.DefineType("layout", oodb.NilType, 180, f, []oodb.AttrDef{
		{Name: "props", Size: 24, AccessFreq: 0.9},
		{Name: "mask-data", Size: 1024, AccessFreq: 0.02},
	})
	if err != nil {
		log.Fatal(err)
	}
	var nf oodb.FreqProfile
	nf[oodb.Correspondence] = 0.6
	netlist, err := db.DefineType("netlist", oodb.NilType, 150, nf, nil)
	if err != nil {
		log.Fatal(err)
	}

	alu, err := db.CreateObject("ALU", 1, layout)
	if err != nil {
		log.Fatal(err)
	}
	aluNet, err := db.CreateObject("ALU", 3, netlist)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Correspond(alu.ID, aluNet.ID); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: size=%d bytes (all attributes by copy)\n", db.Triple(alu.ID), alu.Size)

	// Derive a chain of versions. Each derivation re-runs the
	// copy-vs-reference cost formulas; "mask-data" (1 KB, accessed 2%% of
	// the time) moves to by-reference, "props" stays by copy.
	cur := alu
	for v := 0; v < 4; v++ {
		next, err := db.Derive(cur.ID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: size=%d bytes, inherits from %s, page %d (ancestor on %d), correspondences %d\n",
			db.Triple(next.ID), next.Size, db.Triple(next.InheritsFrom),
			db.PageOf(next.ID), db.PageOf(cur.ID), len(next.Correspondents))
		cur = next
	}

	// The paper's example: if ALU[2].layout corresponds to ALU[3].netlist,
	// a new descendant of ALU[2].layout inherits that correspondence.
	if len(cur.Correspondents) == 1 && cur.Correspondents[0] == aluNet.ID {
		fmt.Println("instance-to-instance inheritance of correspondences: OK")
	} else {
		fmt.Println("unexpected correspondence inheritance")
	}

	// Reading a version prefetch-boosts its history; walking the chain
	// after clustering is nearly free of physical I/O.
	before := db.Stats().PageReads
	for id := cur.ID; id != oodb.NilObject; {
		o, err := db.Get(id)
		if err != nil {
			log.Fatal(err)
		}
		id = o.Ancestor
	}
	fmt.Printf("walking the 5-version history cost %d physical reads\n",
		db.Stats().PageReads-before)
}
