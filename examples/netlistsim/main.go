// Netlistsim: the paper's motivating "simulation tool" scenario — a
// netlist simulator repeatedly walks the configuration hierarchy
// (cell -> net -> segment paths). It builds the same design under
// No_Cluster and under the run-time clustering algorithm, replays the same
// traversal workload against a cold cache, and reports the physical-read
// difference: clustering along the configuration hierarchy is what makes
// hierarchy materialization cheap.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"oodb"
)

const (
	nCells  = 200
	netsPer = 10
	segsPer = 6
	nWalks  = 400
	frames  = 16
)

func buildAndWalk(cluster oodb.ClusterPolicy) (*oodb.DB, oodb.IOStats, int, error) {
	db, err := oodb.Open(oodb.Options{
		BufferFrames: frames,
		Replacement:  oodb.ReplLRU,
		Cluster:      cluster,
		Split:        oodb.LinearSplit,
	})
	if err != nil {
		return nil, oodb.IOStats{}, 0, err
	}

	var cellFreq, netFreq, segFreq oodb.FreqProfile
	cellFreq[oodb.ConfigDown] = 0.7
	netFreq[oodb.ConfigDown] = 0.5
	netFreq[oodb.ConfigUp] = 0.3
	segFreq[oodb.ConfigUp] = 0.7
	cellT, err := db.DefineType("cell", oodb.NilType, 220, cellFreq, nil)
	if err != nil {
		return nil, oodb.IOStats{}, 0, err
	}
	netT, err := db.DefineType("net", oodb.NilType, 140, netFreq, nil)
	if err != nil {
		return nil, oodb.IOStats{}, 0, err
	}
	segT, err := db.DefineType("segment", oodb.NilType, 90, segFreq, nil)
	if err != nil {
		return nil, oodb.IOStats{}, 0, err
	}

	// Interleave construction across cells, the way a real netlist
	// accumulates, so sequential placement scatters related objects.
	rng := rand.New(rand.NewSource(7))
	cells := make([]oodb.ObjectID, 0, nCells)
	type pending struct{ cell, net oodb.ObjectID }
	var nets []pending
	for i := 0; i < nCells; i++ {
		c, err := db.CreateObject(fmt.Sprintf("CELL%d", i), 1, cellT)
		if err != nil {
			return nil, oodb.IOStats{}, 0, err
		}
		cells = append(cells, c.ID)
	}
	for j := 0; j < netsPer; j++ {
		order := rng.Perm(nCells)
		for _, ci := range order {
			n, err := db.CreateAttached(fmt.Sprintf("NET%d_%d", ci, j), 1, netT, cells[ci])
			if err != nil {
				return nil, oodb.IOStats{}, 0, err
			}
			nets = append(nets, pending{cells[ci], n.ID})
		}
	}
	for s := 0; s < segsPer; s++ {
		for _, p := range nets {
			if rng.Intn(2) == 0 {
				continue
			}
			if _, err := db.CreateAttached("SEG", s, segT, p.net); err != nil {
				return nil, oodb.IOStats{}, 0, err
			}
		}
	}

	// Simulation phase: walk cell -> nets -> segments.
	before := db.Stats()
	for w := 0; w < nWalks; w++ {
		cell := cells[rng.Intn(len(cells))]
		netsOf, err := db.GetClosure(cell, oodb.ConfigDown)
		if err != nil {
			return nil, oodb.IOStats{}, 0, err
		}
		for _, n := range netsOf {
			if _, err := db.GetClosure(n.ID, oodb.ConfigDown); err != nil {
				return nil, oodb.IOStats{}, 0, err
			}
		}
	}
	after := db.Stats()
	walkReads := after.PageReads - before.PageReads
	return db, after, walkReads, nil
}

func main() {
	dbN, stN, readsN, err := buildAndWalk(oodb.PolicyNoCluster)
	if err != nil {
		log.Fatal(err)
	}
	dbC, stC, readsC, err := buildAndWalk(oodb.PolicyNoLimit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("netlist walk of %d cells x %d nets, %d traversals, %d buffer frames\n",
		nCells, netsPer, nWalks, frames)
	fmt.Printf("  No_Cluster: %6d physical reads during walks (hit ratio %.2f, %d pages)\n",
		readsN, stN.HitRatio, dbN.NumPages())
	fmt.Printf("  No_limit:   %6d physical reads during walks (hit ratio %.2f, %d pages, splits=%d, moves=%d)\n",
		readsC, stC.HitRatio, dbC.NumPages(), stC.Splits, stC.ClusterMoves)
	if readsC > 0 {
		fmt.Printf("  clustering reduces simulator I/O by %.1fx\n", float64(readsN)/float64(readsC))
	}
}
