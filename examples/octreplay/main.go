// Octreplay closes the loop between the paper's two halves: Section 3
// instruments OCT CAD tools to learn their access patterns; Sections 4–5
// show that a storage manager exploiting structure semantics serves those
// patterns better. This example rebuilds an OCT-style design (facets,
// nets, terminals, paths — Figure 3.1's shapes) *inside* the oodb store
// and replays each calibrated tool's access mix against it, comparing the
// physical reads of a conventional configuration (no clustering, LRU)
// against the paper's recommended one (unlimited clustering,
// context-sensitive replacement, prefetch within database).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"oodb"
	"oodb/internal/oct"
)

const (
	nFacets    = 60
	netsPer    = 20
	frames     = 24
	opsPerTool = 1500
)

// design is an OCT-like design realized as oodb objects.
type design struct {
	db     *oodb.DB
	facets []oodb.ObjectID
	nets   []oodb.ObjectID
	terms  []oodb.ObjectID
}

func build(recommended bool) (*design, error) {
	opt := oodb.Options{BufferFrames: frames}
	if recommended {
		opt.Cluster = oodb.PolicyNoLimit
		opt.Split = oodb.LinearSplit
		opt.Replacement = oodb.ReplContext
		opt.Prefetch = oodb.PrefetchWithinDB
	}
	db, err := oodb.Open(opt)
	if err != nil {
		return nil, err
	}
	var facetF, netF, termF oodb.FreqProfile
	facetF[oodb.ConfigDown] = 0.7
	netF[oodb.ConfigDown] = 0.5
	netF[oodb.ConfigUp] = 0.2
	termF[oodb.ConfigUp] = 0.6
	facetT, err := db.DefineType("facet", oodb.NilType, 300, facetF, nil)
	if err != nil {
		return nil, err
	}
	netT, err := db.DefineType("net", oodb.NilType, 150, netF, nil)
	if err != nil {
		return nil, err
	}
	termT, err := db.DefineType("terminal", oodb.NilType, 90, termF, nil)
	if err != nil {
		return nil, err
	}
	pathT, err := db.DefineType("path", oodb.NilType, 80, termF, nil)
	if err != nil {
		return nil, err
	}

	d := &design{db: db}
	rng := rand.New(rand.NewSource(3))
	// Facets first, then nets round-robin across facets, then terminals —
	// the interleaved accretion order a shared OCT database sees.
	for f := 0; f < nFacets; f++ {
		fo, err := db.CreateObject(fmt.Sprintf("facet%d", f), 1, facetT)
		if err != nil {
			return nil, err
		}
		d.facets = append(d.facets, fo.ID)
	}
	for j := 0; j < netsPer; j++ {
		for _, f := range d.facets {
			n, err := db.CreateAttached(fmt.Sprintf("net%d", j), 1, netT, f)
			if err != nil {
				return nil, err
			}
			d.nets = append(d.nets, n.ID)
		}
	}
	for _, n := range d.nets {
		fan := 1 + rng.Intn(4)
		for t := 0; t < fan; t++ {
			term, err := db.CreateAttached("t", t, termT, n)
			if err != nil {
				return nil, err
			}
			d.terms = append(d.terms, term.ID)
			if t%2 == 0 {
				if _, err := db.CreateAttached("p", t, pathT, term.ID); err != nil {
					return nil, err
				}
			}
		}
	}
	return d, nil
}

// replay drives the store with a tool's read mix: structure reads expand a
// composite's closure, simple reads fetch single objects, writes attach new
// terminals. Returns physical demand reads per 1000 logical operations.
func (d *design) replay(p oct.ToolProfile, rng *rand.Rand) (float64, error) {
	termT, _ := d.db.DefineType(p.Name+"-term", oodb.NilType, 90, oodb.FreqProfile{}, nil)
	st0 := d.db.Stats()
	logical := 0
	for i := 0; i < opsPerTool; i++ {
		isWrite := rng.Float64() < 1/(1+p.RW)
		switch {
		case isWrite:
			n := d.nets[rng.Intn(len(d.nets))]
			if _, err := d.db.CreateAttached("w", i, termT, n); err != nil {
				return 0, err
			}
			logical++
		case rng.Float64() < p.StructureReadShare:
			root := d.nets[rng.Intn(len(d.nets))]
			if rng.Float64() < p.HighShare {
				root = d.facets[rng.Intn(len(d.facets))]
			}
			objs, err := d.db.GetClosure(root, oodb.ConfigDown)
			if err != nil {
				return 0, err
			}
			logical += 1 + len(objs)
		default:
			if _, err := d.db.Get(d.terms[rng.Intn(len(d.terms))]); err != nil {
				return 0, err
			}
			logical++
		}
	}
	st1 := d.db.Stats()
	demand := (st1.PageReads - st0.PageReads) - (st1.PrefetchReads - st0.PrefetchReads)
	return float64(demand) / float64(logical) * 1000, nil
}

func main() {
	fmt.Printf("replaying the instrumented OCT toolset against the object store\n")
	fmt.Printf("(%d facets x %d nets, %d ops per tool, %d buffer frames)\n\n",
		nFacets, netsPer, opsPerTool, frames)
	fmt.Printf("%-12s %22s %22s %8s\n", "tool", "conventional reads/kop", "recommended reads/kop", "gain")
	for _, p := range oct.Toolset() {
		conv, err := build(false)
		if err != nil {
			log.Fatal(err)
		}
		rec, err := build(true)
		if err != nil {
			log.Fatal(err)
		}
		a, err := conv.replay(p, rand.New(rand.NewSource(17)))
		if err != nil {
			log.Fatal(err)
		}
		b, err := rec.replay(p, rand.New(rand.NewSource(17)))
		if err != nil {
			log.Fatal(err)
		}
		gain := a / b
		fmt.Printf("%-12s %22.1f %22.1f %7.1fx\n", p.Name, a, b, gain)
	}
}
