// Quickstart: open a store, define a small CAD type lattice, build a
// design with configuration / version / correspondence relationships, read
// it back, and inspect the I/O accounting.
package main

import (
	"fmt"
	"log"

	"oodb"
)

func main() {
	db, err := oodb.Open(oodb.Options{
		PageSize:     4096,
		BufferFrames: 64,
		Replacement:  oodb.ReplContext,
		Cluster:      oodb.PolicyNoLimit,
		Split:        oodb.LinearSplit,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Types: a layout root type whose instances are navigated downward, and
	// a cell component type navigated upward. The frequency profiles are
	// what the clustering algorithm inherits into each instance.
	var layoutFreq oodb.FreqProfile
	layoutFreq[oodb.ConfigDown] = 0.6
	layoutFreq[oodb.Correspondence] = 0.2
	layoutFreq[oodb.VersionAncestor] = 0.2
	layout, err := db.DefineType("layout", oodb.NilType, 256, layoutFreq, []oodb.AttrDef{
		{Name: "technology", Size: 32, AccessFreq: 0.7},
		{Name: "revision-history", Size: 512, AccessFreq: 0.05},
	})
	if err != nil {
		log.Fatal(err)
	}
	var cellFreq oodb.FreqProfile
	cellFreq[oodb.ConfigUp] = 0.7
	cell, err := db.DefineType("cell", oodb.NilType, 128, cellFreq, nil)
	if err != nil {
		log.Fatal(err)
	}
	var netlistFreq oodb.FreqProfile
	netlistFreq[oodb.Correspondence] = 0.5
	netlist, err := db.DefineType("netlist", oodb.NilType, 200, netlistFreq, nil)
	if err != nil {
		log.Fatal(err)
	}

	// ALU[1].layout composed of carry/add/shift cells.
	alu, err := db.CreateObject("ALU", 1, layout)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"CARRY", "ADD", "SHIFT"} {
		c, err := db.CreateObject(name, 1, cell)
		if err != nil {
			log.Fatal(err)
		}
		if err := db.Attach(alu.ID, c.ID); err != nil {
			log.Fatal(err)
		}
	}

	// A corresponding netlist representation, and a derived version that
	// inherits the correspondence (instance-to-instance inheritance).
	aluNet, err := db.CreateObject("ALU", 1, netlist)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Correspond(alu.ID, aluNet.ID); err != nil {
		log.Fatal(err)
	}
	alu2, err := db.Derive(alu.ID)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("objects:")
	for _, id := range []oodb.ObjectID{alu.ID, aluNet.ID, alu2.ID} {
		fmt.Printf("  %-16s on page %d\n", db.Triple(id), db.PageOf(id))
	}
	fmt.Printf("derived version inherits correspondence: %v\n",
		len(alu2.Correspondents) == 1)

	// Navigate: expand the configuration (reads ALU[1].layout and its three
	// cells — co-clustered, so this costs at most one or two page reads).
	comps, err := db.GetClosure(alu.ID, oodb.ConfigDown)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("components of %s:", db.Triple(alu.ID))
	for _, c := range comps {
		fmt.Printf(" %s", db.Triple(c.ID))
	}
	fmt.Println()

	st := db.Stats()
	fmt.Printf("stats: logical reads=%d page reads=%d page writes=%d hit ratio=%.2f\n",
		st.LogicalReads, st.PageReads, st.PageWrites, st.HitRatio)
	if err := db.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("storage invariants hold")
}
