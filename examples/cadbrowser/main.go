// Cadbrowser: the paper's design-browser scenario — a browser walks
// through multiple representations of the same design objects, so
// clustering across *correspondence* relationships and hint-driven
// prefetching are what pay off. The example registers the "access by
// correspondence" hint, browses, and compares LRU against the
// context-sensitive policy with prefetching.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"oodb"
)

const (
	nDesigns = 400
	nReps    = 4 // layout, netlist, transistor, symbolic
	nBrowses = 600
	nHot     = 15 // designs under active review
	frames   = 48
	repSize  = 1100 // bytes: a correspondence group spans two pages
)

type built struct {
	db    *oodb.DB
	roots [][]oodb.ObjectID // [design][rep]
}

func build(repl oodb.Replacement, prefetch oodb.PrefetchPolicy, hint bool) (*built, error) {
	db, err := oodb.Open(oodb.Options{
		BufferFrames: frames,
		Replacement:  repl,
		Cluster:      oodb.PolicyNoLimit,
		Split:        oodb.LinearSplit,
		Prefetch:     prefetch,
	})
	if err != nil {
		return nil, err
	}
	if hint {
		db.RegisterHint(oodb.Correspondence)
	}

	repNames := []string{"layout", "netlist", "transistor", "symbolic"}
	var reps []oodb.TypeID
	for _, rn := range repNames {
		var f oodb.FreqProfile
		f[oodb.Correspondence] = 0.6
		f[oodb.ConfigDown] = 0.2
		t, err := db.DefineType(rn, oodb.NilType, repSize, f, nil)
		if err != nil {
			return nil, err
		}
		reps = append(reps, t)
	}

	b := &built{db: db}
	// Representations of a design are created at different times (layout
	// first for every design, then netlists, ...), so creation-order
	// placement scatters the correspondence groups.
	b.roots = make([][]oodb.ObjectID, nDesigns)
	for r := 0; r < nReps; r++ {
		for d := 0; d < nDesigns; d++ {
			o, err := db.CreateObject(fmt.Sprintf("D%d", d), 1, reps[r])
			if err != nil {
				return nil, err
			}
			b.roots[d] = append(b.roots[d], o.ID)
			for p := 0; p < r; p++ {
				if err := db.Correspond(b.roots[d][p], o.ID); err != nil {
					return nil, err
				}
			}
		}
	}
	return b, nil
}

// browse opens a design and flips through all its representations, the way
// a designer reviews layout against netlist against schematic. Browsing
// has working-set locality: most openings revisit the designs under active
// review. It returns demand reads (misses the browser waits on) and total
// physical reads (demand plus background prefetch).
func (b *built) browse(rng *rand.Rand) (demand, total int, err error) {
	for i := 0; i < nBrowses; i++ {
		d := rng.Intn(nDesigns)
		if rng.Float64() < 0.75 {
			d = rng.Intn(nHot)
		}
		root := b.roots[d][rng.Intn(nReps)]
		st0 := b.db.Stats()
		if _, err := b.db.GetClosure(root, oodb.Correspondence); err != nil {
			return 0, 0, err
		}
		st1 := b.db.Stats()
		total += st1.PageReads - st0.PageReads
		demand += (st1.PageReads - st0.PageReads) - (st1.PrefetchReads - st0.PrefetchReads)
		// Every few browses a batch tool sweeps cold designs (the kind of
		// whole-design scan Section 3.5 describes); native LRU lets the
		// sweep evict the browser's working set, the context-sensitive
		// policy does not.
		if i%10 == 9 {
			for j := 0; j < 30; j++ {
				if _, err := b.db.Get(b.roots[nHot+(i*7+j)%(nDesigns-nHot)][0]); err != nil {
					return 0, 0, err
				}
			}
		}
	}
	return demand, total, nil
}

func main() {
	type variant struct {
		name     string
		repl     oodb.Replacement
		prefetch oodb.PrefetchPolicy
		hint     bool
	}
	variants := []variant{
		{"LRU, no prefetch, no hint", oodb.ReplLRU, oodb.NoPrefetch, false},
		{"LRU, prefetch in DB, hint", oodb.ReplLRU, oodb.PrefetchWithinDB, true},
		{"Context, no prefetch, hint", oodb.ReplContext, oodb.NoPrefetch, true},
		{"Context, prefetch in DB, hint", oodb.ReplContext, oodb.PrefetchWithinDB, true},
	}
	fmt.Printf("browsing %d designs x %d representations, %d browse operations\n",
		nDesigns, nReps, nBrowses)
	for _, v := range variants {
		b, err := build(v.repl, v.prefetch, v.hint)
		if err != nil {
			log.Fatal(err)
		}
		demand, total, err := b.browse(rand.New(rand.NewSource(11)))
		if err != nil {
			log.Fatal(err)
		}
		st := b.db.Stats()
		fmt.Printf("  %-30s %6d demand reads, %6d total during browses (overall hit ratio %.2f)\n",
			v.name, demand, total, st.HitRatio)
	}
}
