// Package oodb is an object-oriented database storage manager that exploits
// inheritance and structure semantics for clustering and buffering, a
// faithful reproduction of the system described in:
//
//	Ellis E. Chang and Randy H. Katz. "Exploiting Inheritance and Structure
//	Semantics for Effective Clustering and Buffering in an Object-Oriented
//	DBMS." SIGMOD 1989 (UCB/CSD 88/473).
//
// The package offers two entry points:
//
//   - DB: an embeddable object store over the Version Data Model — typed,
//     versioned objects with configuration, version-history, and
//     correspondence relationships — whose physical placement is managed by
//     the paper's run-time clustering algorithm and whose page accesses run
//     through a context-sensitive buffer pool. Physical I/O is modeled (the
//     store is in-memory) and fully accounted, so applications can observe
//     exactly what the paper's policies would do to their access patterns.
//
//   - Simulation and experiments: RunSimulation executes the paper's
//     ten-user engineering-database model for one configuration;
//     RunExperiment regenerates any of the paper's tables and figures.
package oodb

import (
	"fmt"

	"oodb/internal/buffer"
	"oodb/internal/core"
	"oodb/internal/model"
	"oodb/internal/obs"
	"oodb/internal/storage"
)

// Re-exported model vocabulary. These aliases make the internal packages'
// types part of the public API without duplicating them.
type (
	// ObjectID identifies an object.
	ObjectID = model.ObjectID
	// TypeID identifies a type in the lattice.
	TypeID = model.TypeID
	// Object is a versioned design object.
	Object = model.Object
	// Type is a representation type.
	Type = model.Type
	// AttrDef declares an attribute on a type.
	AttrDef = model.AttrDef
	// FreqProfile is a traversal-frequency profile.
	FreqProfile = model.FreqProfile
	// RelKind is a structural-relationship kind.
	RelKind = model.RelKind
	// PageID identifies a storage page.
	PageID = storage.PageID

	// ClusterPolicy selects the candidate-page pool for clustering.
	ClusterPolicy = core.ClusterPolicy
	// SplitPolicy selects page-overflow handling.
	SplitPolicy = core.SplitPolicy
	// PrefetchPolicy selects the prefetch scope.
	PrefetchPolicy = core.PrefetchPolicy
	// Replacement selects the buffer replacement policy.
	Replacement = core.Replacement
	// Hint is a user access hint.
	Hint = core.Hint
)

// Relationship kinds.
const (
	ConfigDown        = model.ConfigDown
	ConfigUp          = model.ConfigUp
	VersionAncestor   = model.VersionAncestor
	VersionDescendant = model.VersionDescendant
	Correspondence    = model.Correspondence
	InheritanceRef    = model.InheritanceRef

	NilObject = model.NilObject
	NilType   = model.NilType
	NilPage   = storage.NilPage
)

// Policy constants.
var (
	PolicyNoCluster    = core.PolicyNoCluster
	PolicyWithinBuffer = core.PolicyWithinBuffer
	PolicyIOLimit2     = core.PolicyIOLimit2
	PolicyIOLimit10    = core.PolicyIOLimit10
	PolicyNoLimit      = core.PolicyNoLimit
)

// Split, prefetch and replacement levels.
const (
	NoSplit     = core.NoSplit
	LinearSplit = core.LinearSplit
	NPSplit     = core.NPSplit

	NoPrefetch           = core.NoPrefetch
	PrefetchWithinBuffer = core.PrefetchWithinBuffer
	PrefetchWithinDB     = core.PrefetchWithinDB

	ReplLRU     = core.ReplLRU
	ReplContext = core.ReplContext
	ReplRandom  = core.ReplRandom
)

// Instrumentation seam (internal/obs re-exports).
type (
	// Recorder receives per-layer instrumentation events from every
	// component of the storage stack. Implementations must be cheap; the
	// engine invokes them on hot paths. A nil Recorder disables recording
	// entirely (zero-cost beyond one branch per site).
	Recorder = obs.Recorder
	// EventCounters is the standard counting Recorder; its Render method
	// formats the non-zero counters as a report (what the -observe CLI
	// flag prints).
	EventCounters = obs.Counters
)

// Durability (file-backed storage) re-exports.
type (
	// RecoveredState summarizes a write-ahead-log replay: records found,
	// transactions committed, mutations applied, and the rebuilt placement
	// state with its verified digest.
	RecoveredState = storage.RecoveredState
	// DurableStats counts the physical I/O a persistent backend performed.
	DurableStats = storage.DurableStats
)

// StorageBackends returns the registered storage backend names, sorted.
// These are the values SimConfig.Backend and the CLI -backend flag accept.
func StorageBackends() []string { return storage.BackendNames() }

// HasStorageBackend reports whether name resolves in the storage backend
// registry ("" resolves to "memory").
func HasStorageBackend(name string) bool { return storage.HasBackend(name) }

// RecoverDataDir replays the write-ahead log in a file-backend data
// directory — for example one left behind by a crashed run — applying the
// mutations of committed transactions and verifying the result against the
// digest the log committed. It also scrubs the page file's frame checksums,
// reporting (not failing on) corruption there: the WAL alone is the
// recovery authority.
func RecoverDataDir(dir string) (*RecoveredState, error) {
	return storage.RecoverDir(dir, nil)
}

// WALDigestAt returns the placement digest carried by the k-th commit
// record (0-indexed) in dir's write-ahead log: commit 0 is the database
// construction bootstrap, run commits follow in log order. It lets a
// crash-recovery check compare an interrupted run's recovered state
// against the same commit point of an uninterrupted reference run.
func WALDigestAt(dir string, k int) (uint64, error) {
	return storage.WALDigestAt(dir, k)
}

// ReplacementPolicies returns the registered buffer replacement policy
// names, sorted. These are the values Config.ReplacementName and the CLI
// -repl flag accept beyond the paper's enum.
func ReplacementPolicies() []string { return buffer.PolicyNames() }

// HasReplacementPolicy reports whether name resolves in the replacement
// policy registry (case- and punctuation-insensitive).
func HasReplacementPolicy(name string) bool { return buffer.HasPolicy(name) }

// ClusterStrategies returns the registered clustering strategy names,
// sorted. These are the values Config.ClusterStrategy and the CLI
// -strategy flag accept.
func ClusterStrategies() []string { return core.ClusterStrategyNames() }

// HasClusterStrategy reports whether name resolves in the clustering
// strategy registry.
func HasClusterStrategy(name string) bool { return core.HasClusterStrategy(name) }

// Options configures a DB.
type Options struct {
	// PageSize is the page capacity in bytes (default 4096).
	PageSize int
	// BufferFrames is the buffer-pool size in pages (default 1000).
	BufferFrames int
	// Replacement selects the buffer replacement policy. The zero value is
	// ReplLRU; the paper recommends ReplContext.
	Replacement Replacement
	// Cluster selects the clustering policy. The zero value is
	// PolicyNoCluster (objects placed in creation order); the paper
	// recommends PolicyNoLimit when the read/write ratio is high.
	Cluster ClusterPolicy
	// Split selects the page-splitting policy (default LinearSplit).
	Split SplitPolicy
	// Prefetch selects the prefetch policy (default NoPrefetch).
	Prefetch PrefetchPolicy
	// Seed drives the Random replacement policy (default 1).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.PageSize <= 0 {
		o.PageSize = 4096
	}
	if o.BufferFrames <= 0 {
		o.BufferFrames = 1000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// IOStats accounts the modeled physical I/O a DB has performed.
type IOStats struct {
	LogicalReads  int
	PageReads     int
	PageWrites    int
	HitRatio      float64
	ClusterMoves  int
	Splits        int
	CandidateIOs  int
	PrefetchReads int
}

// DB is an object store whose placement and buffering follow the paper's
// algorithms. It is not safe for concurrent use; wrap it with your own
// synchronization if needed.
type DB struct {
	opt   Options
	graph *model.Graph
	store *storage.Manager
	pool  *buffer.Pool
	clust *core.Clusterer
	pf    *core.Prefetcher

	logicalReads int
	pageReads    int
	pageWrites   int
}

// Open creates an empty database.
func Open(opt Options) (*DB, error) {
	opt = opt.withDefaults()
	g := model.NewGraph()
	st := storage.NewManager(g, opt.PageSize)

	var pol buffer.Policy
	switch opt.Replacement {
	case ReplLRU:
		pol = buffer.NewLRU()
	case ReplRandom:
		pol = buffer.NewRandom(newSeededRand(opt.Seed), uint64(opt.BufferFrames/4))
	case ReplContext:
		pol = core.NewContextPolicy(float64(opt.BufferFrames) * 3 / 4)
	default:
		return nil, fmt.Errorf("oodb: unknown replacement policy %v", opt.Replacement)
	}
	pool := buffer.NewPool(opt.BufferFrames, pol)

	clust := core.NewClusterer(g, st, pool)
	clust.Policy = opt.Cluster
	clust.Split = opt.Split
	clust.AttrCost.PageSize = opt.PageSize

	pf := &core.Prefetcher{Graph: g, Store: st, Pool: pool, Policy: opt.Prefetch}

	return &DB{opt: opt, graph: g, store: st, pool: pool, clust: clust, pf: pf}, nil
}

// DefineType adds a type to the lattice.
func (db *DB) DefineType(name string, super TypeID, baseSize int, freq FreqProfile, attrs []AttrDef) (TypeID, error) {
	return db.graph.DefineType(name, super, baseSize, freq, attrs)
}

// TypeOf returns a type definition.
func (db *DB) TypeOf(id TypeID) *Type { return db.graph.Type(id) }

// charge accounts the physical I/Os of a placement or access.
func (db *DB) charge(ios []core.PhysIO) {
	for _, io := range ios {
		if io.Kind == core.ReadIO {
			db.pageReads++
		} else {
			db.pageWrites++
		}
	}
}

// CreateObject creates version `version` of design object `name`, decides
// its inherited-attribute implementations, and places it with the
// clustering policy.
func (db *DB) CreateObject(name string, version int, t TypeID) (*Object, error) {
	o, err := db.graph.NewObject(name, version, t)
	if err != nil {
		return nil, err
	}
	pl, err := db.clust.PlaceNew(o)
	if err != nil {
		return nil, err
	}
	db.charge(pl.IOs)
	db.markDirty(pl.DirtyPages)
	return o, nil
}

func (db *DB) markDirty(pages []PageID) {
	for _, pg := range pages {
		if db.pool.Contains(pg) {
			db.pool.MarkDirty(pg) //nolint:errcheck // contains-checked
		}
	}
}

// CreateAttached creates an object already attached to a composite, so the
// clustering algorithm sees the configuration relationship when it picks
// the initial placement — the natural way to add a component. This is the
// programmatic form of the paper's creation-time "place near object XX"
// hints.
func (db *DB) CreateAttached(name string, version int, t TypeID, composite ObjectID) (*Object, error) {
	o, err := db.graph.NewObject(name, version, t)
	if err != nil {
		return nil, err
	}
	if err := db.graph.Attach(composite, o.ID); err != nil {
		return nil, err
	}
	pl, err := db.clust.PlaceNew(o)
	if err != nil {
		return nil, err
	}
	db.charge(pl.IOs)
	db.markDirty(pl.DirtyPages)
	return o, nil
}

// Get reads one object, running the buffer, context-boost, and prefetch
// machinery.
func (db *DB) Get(id ObjectID) (*Object, error) {
	o := db.graph.Object(id)
	if o == nil {
		return nil, fmt.Errorf("oodb: %w: %d", model.ErrNoSuchObject, id)
	}
	pg := db.store.PageOf(id)
	if pg == NilPage {
		return nil, fmt.Errorf("oodb: object %d is unplaced", id)
	}
	res, err := db.pool.Access(pg)
	if err != nil {
		return nil, err
	}
	db.charge(core.ExpandAccess(res, pg))
	db.logicalReads++
	if db.opt.Replacement == ReplContext {
		for _, rp := range core.ContextBoostPages(db.graph, db.store, o) {
			db.pool.Boost(rp)
		}
	}
	pfIOs, err := db.pf.OnAccess(o)
	if err != nil {
		return nil, err
	}
	db.charge(pfIOs)
	return o, nil
}

// GetClosure reads an object and its one-hop neighborhood along kind,
// returning the neighbor objects — the shape of the paper's component /
// composite / version / correspondence retrieval queries.
func (db *DB) GetClosure(id ObjectID, kind RelKind) ([]*Object, error) {
	o, err := db.Get(id)
	if err != nil {
		return nil, err
	}
	ids := append([]ObjectID(nil), o.Neighbors(kind)...)
	out := make([]*Object, 0, len(ids))
	for _, n := range ids {
		no, err := db.Get(n)
		if err != nil {
			return nil, err
		}
		out = append(out, no)
	}
	return out, nil
}

// Attach adds a configuration relationship and reclusters the component.
func (db *DB) Attach(composite, component ObjectID) error {
	if err := db.graph.Attach(composite, component); err != nil {
		return err
	}
	return db.recluster(component)
}

// Correspond adds a correspondence relationship and reclusters both ends.
func (db *DB) Correspond(a, b ObjectID) error {
	if err := db.graph.Correspond(a, b); err != nil {
		return err
	}
	if err := db.recluster(a); err != nil {
		return err
	}
	return db.recluster(b)
}

// Derive creates and places a new version of ancestor.
func (db *DB) Derive(ancestor ObjectID) (*Object, error) {
	o, err := db.graph.Derive(ancestor)
	if err != nil {
		return nil, err
	}
	pl, err := db.clust.PlaceNew(o)
	if err != nil {
		return nil, err
	}
	db.charge(pl.IOs)
	db.markDirty(pl.DirtyPages)
	return o, nil
}

// Delete removes an object that anchors no structure (no components, no
// descendant versions): its page space is reclaimed and every relationship
// pointing at it is unlinked. Deleting a composite or a versioned ancestor
// returns model.ErrInUse; dismantle bottom-up.
func (db *DB) Delete(id ObjectID) error {
	o := db.graph.Object(id)
	if o == nil {
		return fmt.Errorf("oodb: %w: %d", model.ErrNoSuchObject, id)
	}
	if len(o.Components) > 0 || len(o.Descendants) > 0 {
		return model.ErrInUse
	}
	if pg := db.store.PageOf(id); pg != NilPage {
		if db.pool.Contains(pg) {
			db.pool.MarkDirty(pg) //nolint:errcheck // contains-checked
		}
		if err := db.store.Remove(id); err != nil {
			return err
		}
	}
	return db.graph.DeleteObject(id)
}

func (db *DB) recluster(id ObjectID) error {
	o := db.graph.Object(id)
	if o == nil {
		return fmt.Errorf("oodb: %w: %d", model.ErrNoSuchObject, id)
	}
	if db.store.PageOf(id) == NilPage {
		return nil // unplaced objects get their placement at CreateObject
	}
	pl, err := db.clust.Recluster(o)
	if err != nil {
		return err
	}
	db.charge(pl.IOs)
	db.markDirty(pl.DirtyPages)
	return nil
}

// RegisterHint registers the application's primary access pattern, e.g.
// "access by configuration" (the paper's procedural hint interface). It
// steers placement and prefetching when the hint policy honors hints.
func (db *DB) RegisterHint(kind RelKind) {
	h := Hint{Kind: kind, Active: true}
	db.clust.Hints = core.UserHints
	db.clust.Hint = h
	db.pf.Hints = core.UserHints
	db.pf.Hint = h
}

// ClearHint removes the registered hint.
func (db *DB) ClearHint() {
	db.clust.Hints = core.NoHints
	db.pf.Hints = core.NoHints
}

// PageOf returns the page an object lives on.
func (db *DB) PageOf(id ObjectID) PageID { return db.store.PageOf(id) }

// Triple renders the paper's name[i].type notation for an object.
func (db *DB) Triple(id ObjectID) string { return db.graph.Triple(id) }

// NumObjects returns the number of objects.
func (db *DB) NumObjects() int { return db.graph.NumObjects() }

// NumPages returns the number of allocated pages.
func (db *DB) NumPages() int { return db.store.NumPages() }

// Stats returns cumulative I/O accounting.
func (db *DB) Stats() IOStats {
	ps := db.pool.Stats()
	cs := db.clust.Stats()
	return IOStats{
		LogicalReads:  db.logicalReads,
		PageReads:     db.pageReads,
		PageWrites:    db.pageWrites,
		HitRatio:      ps.HitRatio(),
		ClusterMoves:  cs.Moves,
		Splits:        cs.Splits,
		CandidateIOs:  cs.CandidateIOs,
		PrefetchReads: db.pf.PrefetchReads,
	}
}

// CheckInvariants validates storage consistency (every object on exactly
// one page, page capacities respected).
func (db *DB) CheckInvariants() error { return db.store.CheckInvariants() }
