package oodb

import (
	"bytes"
	"fmt"
	"testing"
)

func openTest(t *testing.T, opt Options) *DB {
	t.Helper()
	db, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// schema defines a root/leaf pair for API tests.
func schema(t *testing.T, db *DB) (root, leaf TypeID) {
	t.Helper()
	var rf, lf FreqProfile
	rf[ConfigDown] = 0.5
	rf[Correspondence] = 0.2
	lf[ConfigUp] = 0.6
	var err error
	root, err = db.DefineType("root", NilType, 200, rf, []AttrDef{
		{Name: "hot", Size: 16, AccessFreq: 0.9},
		{Name: "cold", Size: 1024, AccessFreq: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	leaf, err = db.DefineType("leaf", NilType, 100, lf, nil)
	if err != nil {
		t.Fatal(err)
	}
	return root, leaf
}

func TestOpenDefaults(t *testing.T) {
	db := openTest(t, Options{})
	if db.opt.PageSize != 4096 || db.opt.BufferFrames != 1000 {
		t.Fatalf("defaults: %+v", db.opt)
	}
	if _, err := Open(Options{Replacement: Replacement(9)}); err == nil {
		t.Fatal("bad replacement accepted")
	}
}

func TestCreateAndGet(t *testing.T) {
	db := openTest(t, Options{BufferFrames: 16, Cluster: PolicyNoLimit})
	rootT, leafT := schema(t, db)
	r, err := db.CreateObject("ALU", 1, rootT)
	if err != nil {
		t.Fatal(err)
	}
	if db.Triple(r.ID) != "ALU[1].root" {
		t.Fatalf("triple %q", db.Triple(r.ID))
	}
	l, err := db.CreateAttached("C", 1, leafT, r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if db.PageOf(l.ID) != db.PageOf(r.ID) {
		t.Fatal("CreateAttached did not co-locate with the composite")
	}
	got, err := db.Get(l.ID)
	if err != nil || got.ID != l.ID {
		t.Fatalf("get: %v %v", got, err)
	}
	if _, err := db.Get(ObjectID(999)); err == nil {
		t.Fatal("get of unknown object succeeded")
	}
	if db.NumObjects() != 2 || db.NumPages() == 0 {
		t.Fatalf("counts: %d objects %d pages", db.NumObjects(), db.NumPages())
	}
	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGetClosure(t *testing.T) {
	db := openTest(t, Options{BufferFrames: 16, Cluster: PolicyNoLimit})
	rootT, leafT := schema(t, db)
	r, _ := db.CreateObject("R", 1, rootT)
	for i := 0; i < 4; i++ {
		if _, err := db.CreateAttached(fmt.Sprintf("L%d", i), 1, leafT, r.ID); err != nil {
			t.Fatal(err)
		}
	}
	comps, err := db.GetClosure(r.ID, ConfigDown)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 4 {
		t.Fatalf("closure size %d", len(comps))
	}
	ups, err := db.GetClosure(comps[0].ID, ConfigUp)
	if err != nil || len(ups) != 1 || ups[0].ID != r.ID {
		t.Fatalf("upward closure: %v %v", ups, err)
	}
}

func TestDeriveAndAttrImpls(t *testing.T) {
	db := openTest(t, Options{BufferFrames: 16, Cluster: PolicyNoLimit})
	rootT, _ := schema(t, db)
	a, _ := db.CreateObject("X", 1, rootT)
	sizeV1 := a.Size
	d, err := db.Derive(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if d.Version != 2 || d.Ancestor != a.ID {
		t.Fatalf("derived: %+v", d)
	}
	// The 1 KB cold attribute goes by-reference on the derived version.
	if d.Size >= sizeV1 {
		t.Fatalf("derived version should shrink: %d -> %d", sizeV1, d.Size)
	}
}

func TestCorrespondAndRecluster(t *testing.T) {
	db := openTest(t, Options{BufferFrames: 16, Cluster: PolicyNoLimit})
	rootT, _ := schema(t, db)
	a, _ := db.CreateObject("A", 1, rootT)
	b, _ := db.CreateObject("B", 1, rootT)
	if err := db.Correspond(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if len(a.Correspondents) != 1 || len(b.Correspondents) != 1 {
		t.Fatal("correspondence not recorded")
	}
	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAttachReclusters(t *testing.T) {
	db := openTest(t, Options{BufferFrames: 32, Cluster: PolicyNoLimit})
	rootT, leafT := schema(t, db)
	r1, _ := db.CreateObject("R1", 1, rootT)
	r2, _ := db.CreateObject("R2", 1, rootT)
	l, _ := db.CreateAttached("L", 1, leafT, r1.ID)
	if db.PageOf(l.ID) != db.PageOf(r1.ID) {
		t.Fatal("setup: leaf not with r1")
	}
	// Re-attaching to r2 (with more links) triggers run-time reclustering;
	// the leaf stays where affinity is highest, which after a second and
	// third attachment to r2's page content shifts.
	if err := db.Attach(r2.ID, l.ID); err != nil {
		t.Fatal(err)
	}
	if db.Stats().ClusterMoves > 0 && db.PageOf(l.ID) == NilPage {
		t.Fatal("move lost the object")
	}
	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHintsAPI(t *testing.T) {
	db := openTest(t, Options{BufferFrames: 16, Cluster: PolicyNoLimit})
	db.RegisterHint(Correspondence)
	if db.clust.Hint.Kind != Correspondence || !db.clust.Hint.Active {
		t.Fatal("hint not registered with the clusterer")
	}
	if db.pf.Hint.Kind != Correspondence {
		t.Fatal("hint not registered with the prefetcher")
	}
	db.ClearHint()
	if db.clust.Hints != 0 {
		t.Fatal("hint not cleared")
	}
}

func TestIOAccounting(t *testing.T) {
	db := openTest(t, Options{BufferFrames: 4, Cluster: PolicyNoLimit})
	rootT, leafT := schema(t, db)
	var ids []ObjectID
	for i := 0; i < 20; i++ {
		r, err := db.CreateObject(fmt.Sprintf("R%d", i), 1, rootT)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.CreateAttached("L", i, leafT, r.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, r.ID)
	}
	for _, id := range ids {
		if _, err := db.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.LogicalReads != 20 {
		t.Fatalf("logical reads %d", st.LogicalReads)
	}
	if st.PageReads == 0 {
		t.Fatal("a 4-frame pool over 20+ pages must miss")
	}
	if st.HitRatio < 0 || st.HitRatio > 1 {
		t.Fatalf("hit ratio %v", st.HitRatio)
	}
}

func TestSimulationFacade(t *testing.T) {
	cfg := DefaultSimConfig(0.01)
	cfg.Transactions = 150
	res, err := RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed < cfg.Transactions || res.MeanResponse <= 0 {
		t.Fatalf("results: %+v", res)
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := Experiments()
	if len(ids) < 20 {
		t.Fatalf("only %d experiments", len(ids))
	}
	tb, err := RunExperiment("fig3.2", ExperimentOptions{Scale: 0.01, Transactions: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 10 {
		t.Fatalf("rows=%d", len(tb.Rows))
	}
	_, err = RunExperiment("nope", ExperimentOptions{})
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	var ue *UnknownExperimentError
	if ok := errorsAs(err, &ue); !ok || ue.ID != "nope" {
		t.Fatalf("error type: %v", err)
	}
}

// errorsAs avoids importing errors just for one assertion.
func errorsAs(err error, target **UnknownExperimentError) bool {
	if e, ok := err.(*UnknownExperimentError); ok {
		*target = e
		return true
	}
	return false
}

func TestReplacementOptionsWork(t *testing.T) {
	for _, repl := range []Replacement{ReplLRU, ReplContext, ReplRandom} {
		db := openTest(t, Options{BufferFrames: 8, Replacement: repl, Cluster: PolicyNoLimit})
		rootT, _ := schema(t, db)
		for i := 0; i < 30; i++ {
			if _, err := db.CreateObject(fmt.Sprintf("R%d", i), 1, rootT); err != nil {
				t.Fatalf("%v: %v", repl, err)
			}
		}
		if err := db.CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", repl, err)
		}
	}
}

func TestRunExperimentsShared(t *testing.T) {
	opt := ExperimentOptions{Scale: 0.008, Transactions: 200, Seed: 1}
	tables, err := RunExperiments([]string{"fig3.2", "fig3.4"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || tables[0].ID != "fig3.2" || tables[1].ID != "fig3.4" {
		t.Fatalf("tables: %v", tables)
	}
	if _, err := RunExperiments([]string{"fig3.2", "bogus"}, opt); err == nil {
		t.Fatal("bogus id accepted")
	}
	var ue *UnknownExperimentError
	_, err = RunExperiments([]string{"bogus"}, opt)
	if !errorsAs(err, &ue) || ue.Error() == "" {
		t.Fatalf("error: %v", err)
	}
}

func TestAttachCorrespondErrors(t *testing.T) {
	db := openTest(t, Options{BufferFrames: 8, Cluster: PolicyNoLimit})
	rootT, _ := schema(t, db)
	a, _ := db.CreateObject("A", 1, rootT)
	if err := db.Attach(a.ID, a.ID); err == nil {
		t.Fatal("self attach accepted")
	}
	if err := db.Attach(a.ID, ObjectID(999)); err == nil {
		t.Fatal("attach to unknown accepted")
	}
	if err := db.Correspond(a.ID, a.ID); err == nil {
		t.Fatal("self correspond accepted")
	}
	b, _ := db.CreateObject("B", 1, rootT)
	if err := db.Correspond(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if err := db.Correspond(a.ID, b.ID); err == nil {
		t.Fatal("duplicate correspond accepted")
	}
}

func TestDeleteAPI(t *testing.T) {
	db := openTest(t, Options{BufferFrames: 16, Cluster: PolicyNoLimit})
	rootT, leafT := schema(t, db)
	r, _ := db.CreateObject("R", 1, rootT)
	l, _ := db.CreateAttached("L", 1, leafT, r.ID)
	if err := db.Delete(r.ID); err == nil {
		t.Fatal("deleting a composite must fail")
	}
	if err := db.Delete(l.ID); err != nil {
		t.Fatal(err)
	}
	if db.NumObjects() != 1 {
		t.Fatalf("objects=%d", db.NumObjects())
	}
	if len(r.Components) != 0 {
		t.Fatal("composite still lists deleted component")
	}
	if _, err := db.Get(l.ID); err == nil {
		t.Fatal("deleted object readable")
	}
	if err := db.Delete(l.ID); err == nil {
		t.Fatal("double delete accepted")
	}
	// Now the root is a leaf and deletable; its page space is reclaimed.
	if err := db.Delete(r.ID); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotWithDeletions(t *testing.T) {
	db := buildSnapshotFixture(t)
	// Delete a couple of leaves to punch ID holes.
	deleted := 0
	for id := ObjectID(1); int(id) <= db.NumObjects()+deleted && deleted < 2; id++ {
		o := db.graph.Object(id)
		if o == nil || len(o.Components) > 0 || len(o.Descendants) > 0 {
			continue
		}
		if err := db.Delete(id); err == nil {
			deleted++
		}
	}
	if deleted != 2 {
		t.Fatalf("deleted %d", deleted)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf, Options{BufferFrames: 16})
	if err != nil {
		t.Fatal(err)
	}
	if db2.NumObjects() != db.NumObjects() {
		t.Fatalf("objects %d vs %d", db2.NumObjects(), db.NumObjects())
	}
	// IDs are preserved across the holes.
	found := false
	db.graph.ForEachObject(func(o *Object) {
		if db2.Triple(o.ID) != db.Triple(o.ID) {
			t.Fatalf("object %d identity shifted: %q vs %q",
				o.ID, db.Triple(o.ID), db2.Triple(o.ID))
		}
		found = true
	})
	if !found {
		t.Fatal("no objects compared")
	}
}
