package oodb

import (
	"encoding/gob"
	"fmt"
	"io"

	"oodb/internal/checkpoint"
	"oodb/internal/model"
)

// Snapshot support: Save serializes the full database — the type lattice,
// every object with its relationships and attribute implementations, and
// the physical page layout — and Load reconstructs it. The physical layout
// matters: it is the clustering algorithm's accumulated work, so a reloaded
// database keeps the locality the policies built.
//
// The format is encoding/gob of the snapshot structure below; it is
// versioned so later releases can migrate.

// snapshotVersion identifies the on-disk format.
const snapshotVersion = 1

// Typed load errors, shared with the engine-checkpoint and trace formats
// (internal/checkpoint). Callers distinguish "not a snapshot / damaged
// bytes" (ErrCorruptSnapshot) from "a snapshot, but a format this build
// does not read" (ErrSnapshotVersion) with errors.Is.
var (
	// ErrCorruptSnapshot reports undecodable or truncated snapshot bytes,
	// or decoded contents that fail validation.
	ErrCorruptSnapshot = checkpoint.ErrCorrupt
	// ErrSnapshotVersion reports a well-formed snapshot in an unsupported
	// format version.
	ErrSnapshotVersion = checkpoint.ErrVersion
)

type snapType struct {
	Name     string
	Super    TypeID
	BaseSize int
	Freq     FreqProfile
	Attrs    []AttrDef
}

type snapObject struct {
	ID      ObjectID
	Name    string
	Version int
	Type    TypeID
	Size    int
	Freq    FreqProfile

	Components     []ObjectID
	Composites     []ObjectID
	Ancestor       ObjectID
	Descendants    []ObjectID
	Correspondents []ObjectID
	InheritsFrom   ObjectID
	AttrImpls      []model.AttrImpl

	Page PageID
}

type snapshot struct {
	Format   int
	PageSize int
	NumPages int
	Types    []snapType
	Objects  []snapObject
}

// Save writes the database to w. The buffer pool's transient state (what is
// resident, dirty flags) is deliberately not saved: a reloaded database
// starts with a cold cache, like a restarted server.
func (db *DB) Save(w io.Writer) error {
	snap := snapshot{
		Format:   snapshotVersion,
		PageSize: db.opt.PageSize,
		NumPages: db.store.NumPages(),
	}
	for t := TypeID(1); int(t) <= db.graph.NumTypes(); t++ {
		tp := db.graph.Type(t)
		snap.Types = append(snap.Types, snapType{
			Name: tp.Name, Super: tp.Super, BaseSize: tp.BaseSize,
			Freq: tp.Freq, Attrs: tp.Attrs,
		})
	}
	var iterErr error
	db.graph.ForEachObject(func(o *Object) {
		snap.Objects = append(snap.Objects, snapObject{
			ID:   o.ID,
			Name: o.Name, Version: o.Version, Type: o.Type, Size: o.Size,
			Freq:           o.Freq,
			Components:     o.Components,
			Composites:     o.Composites,
			Ancestor:       o.Ancestor,
			Descendants:    o.Descendants,
			Correspondents: o.Correspondents,
			InheritsFrom:   o.InheritsFrom,
			AttrImpls:      o.AttrImpls,
			Page:           db.store.PageOf(o.ID),
		})
	})
	if iterErr != nil {
		return iterErr
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Load reconstructs a database from a Save stream. opt supplies the runtime
// configuration (buffer pool, policies); its PageSize must match the
// snapshot's or be zero (in which case the snapshot's is used).
func Load(r io.Reader, opt Options) (*DB, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("oodb: decoding snapshot: %w: %v", ErrCorruptSnapshot, err)
	}
	if snap.Format != snapshotVersion {
		return nil, fmt.Errorf("oodb: %w: snapshot format %d, this build reads %d",
			ErrSnapshotVersion, snap.Format, snapshotVersion)
	}
	if snap.PageSize <= 0 || snap.NumPages < 0 {
		return nil, fmt.Errorf("oodb: %w: page size %d, page count %d",
			ErrCorruptSnapshot, snap.PageSize, snap.NumPages)
	}
	if opt.PageSize == 0 {
		opt.PageSize = snap.PageSize
	}
	if opt.PageSize != snap.PageSize {
		return nil, fmt.Errorf("oodb: page size %d does not match snapshot's %d",
			opt.PageSize, snap.PageSize)
	}
	db, err := Open(opt)
	if err != nil {
		return nil, err
	}
	for _, st := range snap.Types {
		if _, err := db.graph.DefineType(st.Name, st.Super, st.BaseSize, st.Freq, st.Attrs); err != nil {
			return nil, fmt.Errorf("oodb: restoring type %q: %w", st.Name, err)
		}
	}
	// Pass 1: recreate objects under their original IDs so references line
	// up; gaps left by deleted objects become tombstones.
	for _, so := range snap.Objects {
		o, err := db.graph.RestoreObject(so.ID, so.Name, so.Version, so.Type)
		if err != nil {
			return nil, fmt.Errorf("oodb: restoring object %d: %w", so.ID, err)
		}
		o.Size = so.Size
		o.Freq = so.Freq
		o.AttrImpls = so.AttrImpls
	}
	// Pass 2: relationships (assigned directly — the graph mutators would
	// re-derive side effects like correspondence inheritance).
	for _, so := range snap.Objects {
		o := db.graph.Object(so.ID)
		o.Components = so.Components
		o.Composites = so.Composites
		o.Ancestor = so.Ancestor
		o.Descendants = so.Descendants
		o.Correspondents = so.Correspondents
		o.InheritsFrom = so.InheritsFrom
	}
	// Pass 3: physical layout.
	for p := 0; p < snap.NumPages; p++ {
		db.store.AllocatePage()
	}
	for _, so := range snap.Objects {
		if so.Page == NilPage {
			continue
		}
		if so.Page > PageID(snap.NumPages) {
			return nil, fmt.Errorf("oodb: %w: object %d on page %d beyond snapshot's %d pages",
				ErrCorruptSnapshot, so.ID, so.Page, snap.NumPages)
		}
		if err := db.store.Place(so.ID, so.Page); err != nil {
			return nil, fmt.Errorf("oodb: replacing object %d on page %d: %w", so.ID, so.Page, err)
		}
	}
	if err := db.store.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("oodb: snapshot inconsistent: %w: %v", ErrCorruptSnapshot, err)
	}
	return db, nil
}
