package oodb

import "testing"

func TestParseDensity(t *testing.T) {
	for s, want := range map[string]string{
		"low-3": "low-3", "LO3": "low-3",
		"med-5": "med-5", "medium": "med-5",
		"high-10": "high-10", "hi10": "high-10",
	} {
		got, err := ParseDensity(s)
		if err != nil || got.String() != want {
			t.Errorf("ParseDensity(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseDensity("huge"); err == nil {
		t.Error("bad density accepted")
	}
}

func TestParseClusterPolicy(t *testing.T) {
	for s, want := range map[string]string{
		"No_Cluster": "No_Cluster", "none": "No_Cluster",
		"Within_Buffer": "Cluster_within_Buffer",
		"2_IO_limit":    "2_IO_limit", "io10": "10_IO_limit",
		"No_limit": "No_limit", "unlimited": "No_limit",
	} {
		got, err := ParseClusterPolicy(s)
		if err != nil || got.String() != want {
			t.Errorf("ParseClusterPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseClusterPolicy("fancy"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestParseSplitReplacementPrefetch(t *testing.T) {
	if p, err := ParseSplitPolicy("NP_Split"); err != nil || p != NPSplit {
		t.Errorf("split: %v %v", p, err)
	}
	if p, err := ParseSplitPolicy("greedy"); err != nil || p != LinearSplit {
		t.Errorf("split: %v %v", p, err)
	}
	if _, err := ParseSplitPolicy("zig"); err == nil {
		t.Error("bad split accepted")
	}
	if r, err := ParseReplacement("Context-sensitive"); err != nil || r != ReplContext {
		t.Errorf("repl: %v %v", r, err)
	}
	if r, err := ParseReplacement("rand"); err != nil || r != ReplRandom {
		t.Errorf("repl: %v %v", r, err)
	}
	if _, err := ParseReplacement("fifo"); err == nil {
		t.Error("bad replacement accepted")
	}
	if p, err := ParsePrefetchPolicy("db"); err != nil || p != PrefetchWithinDB {
		t.Errorf("prefetch: %v %v", p, err)
	}
	if p, err := ParsePrefetchPolicy("No_prefetch"); err != nil || p != NoPrefetch {
		t.Errorf("prefetch: %v %v", p, err)
	}
	if _, err := ParsePrefetchPolicy("psychic"); err == nil {
		t.Error("bad prefetch accepted")
	}
}
