#!/bin/sh
# Checkpoint round-trip gate: a run interrupted at transaction k and resumed
# from its checkpoint must print byte-identical results to an uninterrupted
# run, and an experiment batch routed through checkpoint/restore must render
# byte-identical figures. Exercises the same path a killed batch takes on
# restart.
#
# Usage: ./scripts/ckpt_roundtrip.sh [scale [txns]]
set -eu

scale="${1:-0.01}"
txns="${2:-400}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/oodbsim" ./cmd/oodbsim

# --- Single-run round trip at several checkpoint positions ---------------
"$tmp/oodbsim" -run -scale "$scale" -txns "$txns" > "$tmp/plain.txt"
for k in 3 $((txns / 2)) $((txns - 10)); do
    "$tmp/oodbsim" -run -scale "$scale" -txns "$txns" \
        -checkpoint "$tmp/ck$k.bin" -checkpoint-at "$k" > "$tmp/full$k.txt" 2>/dev/null
    # The "kill": discard the completed run, keep only the checkpoint file.
    "$tmp/oodbsim" -run -scale "$scale" -txns "$txns" \
        -resume "$tmp/ck$k.bin" > "$tmp/resumed$k.txt"
    diff "$tmp/plain.txt" "$tmp/full$k.txt"
    diff "$tmp/plain.txt" "$tmp/resumed$k.txt"
    echo "ckpt_roundtrip: single run, checkpoint at $k: identical"
done

# --- Trace record/replay round trip --------------------------------------
"$tmp/oodbsim" -run -scale "$scale" -txns "$txns" -record "$tmp/run.trc" > "$tmp/recorded.txt"
"$tmp/oodbsim" -run -scale "$scale" -txns "$txns" -replay "$tmp/run.trc" > "$tmp/replayed.txt"
diff "$tmp/plain.txt" "$tmp/recorded.txt"
diff "$tmp/plain.txt" "$tmp/replayed.txt"
echo "ckpt_roundtrip: trace record/replay: identical"

# --- Figure batch through the checkpoint path ----------------------------
"$tmp/oodbsim" -fig 5.2 -scale "$scale" -txns "$txns" > "$tmp/fig-plain.txt"
"$tmp/oodbsim" -fig 5.2 -scale "$scale" -txns "$txns" \
    -ckpt-each-at $((txns / 4)) > "$tmp/fig-ckpt.txt"
diff "$tmp/fig-plain.txt" "$tmp/fig-ckpt.txt"
echo "ckpt_roundtrip: fig5.2 through checkpoint path: identical"

# --- Medium scale tier round trip ----------------------------------------
# The medium tier turns on the scale mechanics: timing-wheel calendar,
# sharded lock/buffer tables, reservoir statistics. Checkpoints must stay
# byte-identical under all of them — and because the calendar and shard
# counts sit outside the checkpoint fingerprint, the same checkpoint file
# must also resume under the reference heap calendar.
mtxns="$txns"
"$tmp/oodbsim" -run -tier medium -txns "$mtxns" > "$tmp/m-plain.txt"
"$tmp/oodbsim" -run -tier medium -txns "$mtxns" \
    -checkpoint "$tmp/m-ck.bin" -checkpoint-at $((mtxns / 2)) > /dev/null 2>&1
"$tmp/oodbsim" -run -tier medium -txns "$mtxns" \
    -resume "$tmp/m-ck.bin" > "$tmp/m-resumed.txt"
diff "$tmp/m-plain.txt" "$tmp/m-resumed.txt"
"$tmp/oodbsim" -run -tier medium -txns "$mtxns" -calendar heap \
    -resume "$tmp/m-ck.bin" > "$tmp/m-heap.txt"
diff "$tmp/m-plain.txt" "$tmp/m-heap.txt"
echo "ckpt_roundtrip: medium tier (wheel+sharded+reservoir), wheel and heap resume: identical"

# --- Killed-batch restart from a checkpoint directory --------------------
"$tmp/oodbsim" -fig 5.2 -scale "$scale" -txns "$txns" \
    -ckpt-dir "$tmp/ckpts" > "$tmp/fig-dir1.txt"
# Second invocation: fresh process, same checkpoint dir — resumes from the
# persisted per-configuration checkpoints.
"$tmp/oodbsim" -fig 5.2 -scale "$scale" -txns "$txns" \
    -ckpt-dir "$tmp/ckpts" > "$tmp/fig-dir2.txt"
diff "$tmp/fig-plain.txt" "$tmp/fig-dir1.txt"
diff "$tmp/fig-plain.txt" "$tmp/fig-dir2.txt"
echo "ckpt_roundtrip: batch restart from checkpoint dir: identical"

echo "ckpt_roundtrip: all round trips byte-identical"
