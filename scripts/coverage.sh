#!/bin/sh
# Coverage ratchet: total statement coverage (short mode) must not fall
# below the floor recorded in scripts/coverage_floor.txt. Raise the floor
# when coverage rises durably; never lower it to make a change pass.
#
# Usage: ./scripts/coverage.sh [profile-out]
set -eu

dir=$(dirname "$0")
floor=$(cat "$dir/coverage_floor.txt")
profile=${1:-coverage.out}

go test -short -count=1 -coverprofile="$profile" ./...
total=$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
echo "coverage: total ${total}% (floor ${floor}%)"
if ! awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t + 0 >= f + 0) }'; then
    echo "coverage.sh: total coverage ${total}% fell below the ${floor}% floor" >&2
    exit 1
fi
