// Command errscan is a stdlib-only unchecked-error scanner for the repo's
// durability surfaces: it flags calls to error-returning cleanup and write
// methods (Close, Sync, Flush, Write, WriteString) whose error is silently
// discarded — as a bare expression statement or a bare defer. A dropped
// Close or Sync on a write path is a durability bug: the data may never
// have reached the disk and nobody will know.
//
// The scanner is deliberately narrow (a handful of method names, no type
// checking) so it needs nothing outside the standard library — the verify
// path must run without network access. A discard that is genuinely safe
// (read-only handles, best-effort cleanup on an already-failing path) is
// suppressed with a line comment containing "errscan:ok", which doubles as
// in-place documentation of why the discard is sound.
//
// Usage: go run ./scripts/errscan [dir ...]   (default ".")
// Exits 1 if any finding is reported.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// checkedMethods are the error-returning methods whose result must not be
// silently dropped outside tests.
var checkedMethods = map[string]bool{
	"Close":       true,
	"Sync":        true,
	"Flush":       true,
	"Write":       true,
	"WriteString": true,
}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	findings := 0
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name == "testdata" || name == ".git" || strings.HasPrefix(name, "_") {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			n, err := scanFile(path)
			if err != nil {
				return err
			}
			findings += n
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "errscan:", err)
			os.Exit(2)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "errscan: %d unchecked error(s); check the error or annotate the line with // errscan:ok <reason>\n", findings)
		os.Exit(1)
	}
}

func scanFile(path string) (int, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	// Lines carrying an errscan:ok annotation are suppressed.
	suppressed := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "errscan:ok") {
				suppressed[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	findings := 0
	report := func(call *ast.CallExpr, via string) {
		pos := fset.Position(call.Pos())
		if suppressed[pos.Line] {
			return
		}
		sel := call.Fun.(*ast.SelectorExpr)
		fmt.Printf("%s:%d: unchecked error from %s%s.%s()\n",
			pos.Filename, pos.Line, via, exprString(sel.X), sel.Sel.Name)
		findings++
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call := checkedCall(st.X); call != nil {
				report(call, "")
			}
		case *ast.DeferStmt:
			if call := checkedCall(st.Call); call != nil {
				report(call, "defer ")
			}
		case *ast.GoStmt:
			if call := checkedCall(st.Call); call != nil {
				report(call, "go ")
			}
		}
		return true
	})
	return findings, nil
}

// checkedCall returns e as a method call on the checked list, or nil.
func checkedCall(e ast.Expr) *ast.CallExpr {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !checkedMethods[sel.Sel.Name] {
		return nil
	}
	// Method calls only: a package-qualified function like fmt.Write would
	// need type info to distinguish, but none of the checked names exist as
	// package functions in this repo's imports.
	return call
}

// exprString renders simple receivers (identifiers, selectors) for the
// finding message; anything more complex prints as "expr".
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.CallExpr:
		return exprString(v.Fun) + "(...)"
	}
	return "expr"
}
