// Command benchcmp renders a benchstat-style comparison of two bench.sh
// JSON reports (ns/op, B/op, allocs/op per benchmark), so CI logs show how
// the current tree's hot paths moved against the checked-in baseline
// without needing network access for external tooling.
//
// Usage: go run ./scripts/benchcmp OLD.json NEW.json
//
// Exit status is always 0 on a successful comparison: single-run CI numbers
// are too noisy to gate on; the allocs/op regressions that matter are
// enforced by AllocsPerRun tests instead.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

type row struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func load(path string) (map[string]row, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []row
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]row, len(rows))
	for _, r := range rows {
		m[r.Name] = r
	}
	return m, nil
}

func delta(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "~"
		}
		return "+inf"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp OLD.json NEW.json")
		os.Exit(2)
	}
	oldRows, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	newRows, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}

	names := make([]string, 0, len(newRows))
	for name := range newRows {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("%-44s %12s %12s %8s %10s %10s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta")
	for _, name := range names {
		n := newRows[name]
		o, ok := oldRows[name]
		if !ok {
			fmt.Printf("%-44s %12s %12.1f %8s %10s %10.0f %8s\n",
				name, "-", n.NsPerOp, "new", "-", n.AllocsPerOp, "new")
			continue
		}
		fmt.Printf("%-44s %12.1f %12.1f %8s %10.0f %10.0f %8s\n",
			name, o.NsPerOp, n.NsPerOp, delta(o.NsPerOp, n.NsPerOp),
			o.AllocsPerOp, n.AllocsPerOp, delta(o.AllocsPerOp, n.AllocsPerOp))
	}
	for name := range oldRows {
		if _, ok := newRows[name]; !ok {
			fmt.Printf("%-44s (removed)\n", name)
		}
	}
}
