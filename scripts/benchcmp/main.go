// Command benchcmp renders a benchstat-style comparison of two bench.sh
// JSON reports (ns/op, B/op, allocs/op, events/sec per benchmark), so CI
// logs show how the current tree's hot paths moved against the checked-in
// baseline without needing network access for external tooling.
//
// Usage: go run ./scripts/benchcmp [-gate] OLD.json NEW.json
//
// Without -gate, exit status is always 0 on a successful comparison:
// single-run CI numbers are too noisy to gate on; the allocs/op regressions
// that matter are enforced by AllocsPerRun tests instead. With -gate, the
// comparison fails (exit 1) if any benchmark present in both reports
// regressed more than 10% — ns/op up, or events/sec down. The gate is meant
// for two reports measured on the same machine (e.g. the checked-in
// baselines BENCH_5.json and BENCH_6.json), where a 10% move is signal, not
// runner noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// gateThreshold is the fractional regression the -gate mode tolerates.
const gateThreshold = 0.10

type row struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	EventsPerS  float64 `json:"events_per_sec"`
	CommitsPerS float64 `json:"commits_per_sec,omitempty"`
	P50Us       float64 `json:"p50_us,omitempty"`
	P99Us       float64 `json:"p99_us,omitempty"`
	P999Us      float64 `json:"p999_us,omitempty"`
	P99WUs      float64 `json:"p99w_us,omitempty"`
}

func load(path string) (map[string]row, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []row
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]row, len(rows))
	for _, r := range rows {
		m[r.Name] = r
	}
	return m, nil
}

func delta(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "~"
		}
		return "+inf"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

func main() {
	gate := flag.Bool("gate", false, "exit non-zero if any shared benchmark regressed >10% (ns/op up or events/sec down)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-gate] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRows, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	newRows, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}

	names := make([]string, 0, len(newRows))
	for name := range newRows {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions []string
	fmt.Printf("%-44s %12s %12s %8s %10s %10s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta")
	for _, name := range names {
		n := newRows[name]
		o, ok := oldRows[name]
		if !ok {
			fmt.Printf("%-44s %12s %12.1f %8s %10s %10.0f %8s\n",
				name, "-", n.NsPerOp, "new", "-", n.AllocsPerOp, "new")
			continue
		}
		fmt.Printf("%-44s %12.1f %12.1f %8s %10.0f %10.0f %8s\n",
			name, o.NsPerOp, n.NsPerOp, delta(o.NsPerOp, n.NsPerOp),
			o.AllocsPerOp, n.AllocsPerOp, delta(o.AllocsPerOp, n.AllocsPerOp))
		if o.NsPerOp > 0 && (n.NsPerOp-o.NsPerOp)/o.NsPerOp > gateThreshold {
			regressions = append(regressions, fmt.Sprintf("%s: ns/op %s", name, delta(o.NsPerOp, n.NsPerOp)))
		}
		if o.EventsPerS > 0 && n.EventsPerS > 0 && (o.EventsPerS-n.EventsPerS)/o.EventsPerS > gateThreshold {
			regressions = append(regressions, fmt.Sprintf("%s: events/sec %s", name, delta(o.EventsPerS, n.EventsPerS)))
		}
		// Latency percentiles gate in the up direction, like ns/op: a p50
		// or p99 that climbed >10% between same-machine reports means the
		// concurrent path got slower under the same load.
		if o.P50Us > 0 && n.P50Us > 0 && (n.P50Us-o.P50Us)/o.P50Us > gateThreshold {
			regressions = append(regressions, fmt.Sprintf("%s: p50_us %s", name, delta(o.P50Us, n.P50Us)))
		}
		if o.P99Us > 0 && n.P99Us > 0 && (n.P99Us-o.P99Us)/o.P99Us > gateThreshold {
			regressions = append(regressions, fmt.Sprintf("%s: p99_us %s", name, delta(o.P99Us, n.P99Us)))
		}
		// Write-mix gates: commits/sec down is lost durable-write throughput;
		// p99w_us up is a slower write tail (and p99w is simulated, so any
		// move at all is a real model change, not noise).
		if o.CommitsPerS > 0 && n.CommitsPerS > 0 && (o.CommitsPerS-n.CommitsPerS)/o.CommitsPerS > gateThreshold {
			regressions = append(regressions, fmt.Sprintf("%s: commits/sec %s", name, delta(o.CommitsPerS, n.CommitsPerS)))
		}
		if o.P99WUs > 0 && n.P99WUs > 0 && (n.P99WUs-o.P99WUs)/o.P99WUs > gateThreshold {
			regressions = append(regressions, fmt.Sprintf("%s: p99w_us %s", name, delta(o.P99WUs, n.P99WUs)))
		}
	}
	for name := range oldRows {
		if _, ok := newRows[name]; !ok {
			fmt.Printf("%-44s (removed)\n", name)
		}
	}
	if *gate && len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d regression(s) beyond %.0f%%:\n", len(regressions), gateThreshold*100)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
}
