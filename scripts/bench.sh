#!/bin/sh
# Benchmark harness: runs the hot-path micro-benchmarks (core placement and
# split machinery, buffer pool and replacement policies, storage lookup) and
# the macro benchmarks (simulation throughput per scale tier, and concurrent
# multi-session throughput/latency per client count) with -benchmem, and
# writes the parsed results — ns/op, B/op, allocs/op, events/sec,
# commits/sec and p99w_us from the write-mix runs, and the p50/p99/p999
# latency percentiles where reported — to BENCH_10.json (or the
# path given as $1). Compare two reports with:
#   go run ./scripts/benchcmp OLD.json NEW.json
# or gate on >10% ns/op regressions with:
#   go run ./scripts/benchcmp -gate OLD.json NEW.json
#
# Usage: ./scripts/bench.sh [-f] [output.json]
#   -f       overwrite the output file if it already exists
#   BENCHTIME=100ms ./scripts/bench.sh   # quicker, noisier numbers
#   BENCH_SUITE=macro ./scripts/bench.sh # only the simulation-throughput macro
#   BENCH_SUITE=micro ./scripts/bench.sh # only the micro-benchmarks
#   OODB_BENCH_LARGE=1 ./scripts/bench.sh   # include the 100k-user tier
set -eu

suite="${BENCH_SUITE:-all}"

force=0
if [ "${1:-}" = "-f" ]; then
    force=1
    shift
fi
out="${1:-BENCH_10.json}"
if [ -e "$out" ] && [ "$force" -eq 0 ]; then
    echo "bench.sh: $out already exists; pass -f to overwrite" >&2
    exit 1
fi
tmp="$(mktemp)"
rc="$(mktemp)"
trap 'rm -f "$tmp" "$rc"' EXIT

# POSIX sh reports a pipeline's status from its last command, so tee would
# mask a bench failure; capture go test's own status through a side file.
: > "$tmp"
if [ "$suite" != "macro" ]; then
    { go test -run '^$' -bench . -benchmem -benchtime "${BENCHTIME:-1s}" \
        ./internal/core/ ./internal/buffer/ ./internal/storage/; echo "$?" > "$rc"; } | tee -a "$tmp"
    status="$(cat "$rc")"
    if [ "$status" -ne 0 ]; then
        echo "bench.sh: go test -bench failed (exit $status)" >&2
        exit "$status"
    fi
fi

# Macro throughput: simulated transactions and kernel events per wall-clock
# second, per scale tier (the large tier joins when OODB_BENCH_LARGE is set),
# plus concurrent multi-session throughput and latency per client count, the
# real-I/O file-backend runs across fsync policies, the write-mix runs
# (write-enabled OCB over the file backend: commits/sec and p99 write
# latency per fsync policy), and the clustering-tournament runs (write-heavy
# OCB per registered strategy: affinity/dstc/dro/noop).
if [ "$suite" != "micro" ]; then
    { go test -run '^$' -bench 'SimThroughput|ConcurrentSessions|FileBackend|WriteMix|ClusterTournament' -benchtime "${BENCHTIME:-1s}" \
        ./internal/engine/; echo "$?" > "$rc"; } | tee -a "$tmp"
    status="$(cat "$rc")"
    if [ "$status" -ne 0 ]; then
        echo "bench.sh: macro benchmark failed (exit $status)" >&2
        exit "$status"
    fi
fi

awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bop = "0"; aop = "0"; eps = "0"; cps = ""; p50 = ""; p99 = ""; p999 = ""; p99w = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "B/op") bop = $(i - 1)
        if ($i == "allocs/op") aop = $(i - 1)
        if ($i == "events/sec") eps = $(i - 1)
        if ($i == "commits/sec") cps = $(i - 1)
        if ($i == "p50_us") p50 = $(i - 1)
        if ($i == "p99_us") p99 = $(i - 1)
        if ($i == "p999_us") p999 = $(i - 1)
        if ($i == "p99w_us") p99w = $(i - 1)
    }
    if (ns == "") next
    if (!first) printf(",\n")
    first = 0
    printf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"events_per_sec\": %s", \
           name, ns, bop, aop, eps)
    if (cps != "") printf(", \"commits_per_sec\": %s", cps)
    if (p50 != "") printf(", \"p50_us\": %s", p50)
    if (p99 != "") printf(", \"p99_us\": %s", p99)
    if (p999 != "") printf(", \"p999_us\": %s", p999)
    if (p99w != "") printf(", \"p99w_us\": %s", p99w)
    printf("}")
}
END { print "\n]" }
' "$tmp" > "$out"

echo "wrote $out"
