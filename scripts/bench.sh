#!/bin/sh
# Benchmark harness: runs the hot-path micro-benchmarks (core placement and
# split machinery, buffer pool and replacement policies, storage lookup)
# with -benchmem and writes the parsed results — ns/op, B/op, allocs/op per
# benchmark — to BENCH_4.json (or the path given as $1). Compare two reports
# with: go run ./scripts/benchcmp OLD.json NEW.json
#
# Usage: ./scripts/bench.sh [-f] [output.json]
#   -f       overwrite the output file if it already exists
#   BENCHTIME=100ms ./scripts/bench.sh   # quicker, noisier numbers
set -eu

force=0
if [ "${1:-}" = "-f" ]; then
    force=1
    shift
fi
out="${1:-BENCH_4.json}"
if [ -e "$out" ] && [ "$force" -eq 0 ]; then
    echo "bench.sh: $out already exists; pass -f to overwrite" >&2
    exit 1
fi
tmp="$(mktemp)"
rc="$(mktemp)"
trap 'rm -f "$tmp" "$rc"' EXIT

# POSIX sh reports a pipeline's status from its last command, so tee would
# mask a bench failure; capture go test's own status through a side file.
{ go test -run '^$' -bench . -benchmem -benchtime "${BENCHTIME:-1s}" \
    ./internal/core/ ./internal/buffer/ ./internal/storage/; echo "$?" > "$rc"; } | tee "$tmp"
status="$(cat "$rc")"
if [ "$status" -ne 0 ]; then
    echo "bench.sh: go test -bench failed (exit $status)" >&2
    exit "$status"
fi

awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bop = "0"; aop = "0"
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "B/op") bop = $(i - 1)
        if ($i == "allocs/op") aop = $(i - 1)
    }
    if (ns == "") next
    if (!first) printf(",\n")
    first = 0
    printf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
           name, ns, bop, aop)
}
END { print "\n]" }
' "$tmp" > "$out"

echo "wrote $out"
