#!/bin/sh
# Crash-recovery gate: SIGKILL a file-backend run mid-flight, reopen the
# data directory, replay the write-ahead log, and require the recovered
# placement digest to equal the digest an uninterrupted reference run had
# at the same commit point. Also checks the file backend is logically
# invisible: the memory- and file-backend runs of the same configuration
# print the same logical digest.
#
# Usage: ./scripts/crash_roundtrip.sh [scale [txns]]
set -eu

scale="${1:-0.02}"
txns="${2:-3000}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/oodbsim" ./cmd/oodbsim

# digest_line extracts the logical-digest line from a run's output.
digest_line() {
    grep '^  digest=' "$1"
}

# crash_check WORKLOAD EXTRA_FLAGS... runs the reference and the
# crash-recovery comparison for one workload family.
crash_check() {
    wl="$1"; shift

    ref="$tmp/ref-$wl"
    mem="$tmp/mem-$wl.txt"

    # Reference: an uninterrupted file-backend run, plus the same
    # configuration on the memory backend. The logical digests must match —
    # durability must not change what the simulation computes.
    "$tmp/oodbsim" -run -scale "$scale" -txns "$txns" "$@" \
        -backend file -data-dir "$ref" -fsync always > "$tmp/ref-$wl.txt"
    "$tmp/oodbsim" -run -scale "$scale" -txns "$txns" "$@" > "$mem"
    if [ "$(digest_line "$tmp/ref-$wl.txt")" != "$(digest_line "$mem")" ]; then
        echo "crash_roundtrip: $wl: file and memory logical digests differ" >&2
        exit 1
    fi
    echo "crash_roundtrip: $wl: file backend logically invisible"

    # A probe run sizes the WAL through bootstrap + one transaction, so the
    # kill below can be aimed past the bootstrap commit.
    probe="$tmp/probe-$wl"
    "$tmp/oodbsim" -run -scale "$scale" -txns 1 "$@" \
        -backend file -data-dir "$probe" -fsync never > /dev/null
    floor=$(wc -c < "$probe/wal.log")

    # Kill a run mid-flight. If the kill lands before any run commit was
    # durable (or after the run already finished cleanly with the same
    # digest path), retry a few times; fsync=always makes the window wide.
    attempt=0
    while :; do
        attempt=$((attempt + 1))
        if [ "$attempt" -gt 5 ]; then
            echo "crash_roundtrip: $wl: could not land a mid-flight kill in 5 attempts" >&2
            exit 1
        fi
        crash="$tmp/crash-$wl-$attempt"
        "$tmp/oodbsim" -run -scale "$scale" -txns "$txns" "$@" \
            -backend file -data-dir "$crash" -fsync always > /dev/null 2>&1 &
        pid=$!
        # Poll until the WAL has grown past the bootstrap, then SIGKILL.
        i=0
        while [ "$i" -lt 1500 ]; do
            sz=0
            if [ -f "$crash/wal.log" ]; then
                sz=$(wc -c < "$crash/wal.log")
            fi
            if [ "$sz" -gt $((floor + 4096)) ]; then
                break
            fi
            if ! kill -0 "$pid" 2>/dev/null; then
                break
            fi
            sleep 0.02
            i=$((i + 1))
        done
        kill -9 "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true

        if [ ! -f "$crash/wal.log" ]; then
            echo "crash_roundtrip: $wl: kill landed before the WAL existed; retrying"
            continue
        fi
        out=$("$tmp/oodbsim" -recover "$crash")
        echo "$out"
        committed=$(echo "$out" | sed -n 's/.*committed=\([0-9]*\).*/\1/p')
        recovered=$(echo "$out" | sed -n 's/.*digest=\([0-9a-f]*\).*/\1/p')
        if [ -z "$committed" ] || [ -z "$recovered" ]; then
            echo "crash_roundtrip: $wl: could not parse recovery output" >&2
            exit 1
        fi
        if [ "$committed" -gt 0 ]; then
            break
        fi
        echo "crash_roundtrip: $wl: kill landed before the first commit; retrying"
    done

    want=$("$tmp/oodbsim" -wal-digest-at "$committed" -data-dir "$ref" | sed 's/digest=//')
    if [ "$recovered" != "$want" ]; then
        echo "crash_roundtrip: $wl: recovered digest $recovered at commit $committed != reference $want" >&2
        exit 1
    fi
    echo "crash_roundtrip: $wl: SIGKILL at commit $committed recovered to the reference digest"
}

crash_check oct
crash_check ocb -workload ocb
# Write-heavy OCB: roughly one write per read, all four evolution kinds.
# This is the gate the write pipeline answers to — inserts, deletes,
# updates, and rewires journaled through the same WAL must replay to the
# reference digest after a SIGKILL.
crash_check ocbw -workload ocb -ocb-rw 1
# Dynamic clustering strategies: dstc and dro relocate live objects mid-run,
# and those moves journal through the same WAL as any placement — a SIGKILL
# mid-reorganization must still recover to the reference digest.
crash_check dstc -workload ocb -ocb-rw 1 -strategy dstc
crash_check dro -workload ocb -ocb-rw 1 -strategy dro

echo "crash_roundtrip: all checks passed"
