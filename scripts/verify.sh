#!/bin/sh
# Verify path: build, vet, full test suite, then a race-detector pass over
# the packages with real concurrency (the parallel experiment scheduler and
# the DES kernel it drives).
#
# Usage: ./scripts/verify.sh [-short]
#   -short   forwarded to go test; skips the slow full-figure sweeps.
set -eux

go build ./...
go vet ./...
# staticcheck runs when installed (CI installs it; the local toolchain may
# not have it, and the verify path must not require network access).
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
else
    echo "verify.sh: staticcheck not installed; skipping (CI runs it)" >&2
fi
# Unchecked-error pass: a dropped Close/Sync/Write error on the durability
# path is a silent data-loss bug (see scripts/errscan).
go run ./scripts/errscan
# run_tests wraps go test: -count=1 defeats the test cache, and a "no tests
# to run" warning fails the build — a typo'd -run pattern matches nothing,
# exits 0, and would otherwise masquerade as green.
run_tests() {
    out=$(go test -count=1 "$@" 2>&1) || { printf '%s\n' "$out"; exit 1; }
    printf '%s\n' "$out"
    if printf '%s\n' "$out" | grep -q 'no tests to run'; then
        echo "verify.sh: go test $* matched no tests" >&2
        exit 1
    fi
}

run_tests "$@" ./...
# The race pass runs ~10x slower than native; on a single-CPU container the
# experiment suite alone exceeds go test's default 10-minute per-package
# timeout, so give it an explicit budget.
run_tests -race -timeout 30m "$@" ./internal/experiment/... ./internal/sim/... ./internal/oracle/... ./internal/engine/... ./internal/lock/... ./internal/buffer/...
# Bench smoke: every benchmark must run once without failing (full runs and
# the BENCH_2.json report come from scripts/bench.sh).
go test -run '^$' -bench . -benchtime 1x ./...
