#!/bin/sh
# Verify path: build, vet, full test suite, then a race-detector pass over
# the packages with real concurrency (the parallel experiment scheduler and
# the DES kernel it drives).
#
# Usage: ./scripts/verify.sh [-short]
#   -short   forwarded to go test; skips the slow full-figure sweeps.
set -eux

go build ./...
go vet ./...
# staticcheck runs when installed (CI installs it; the local toolchain may
# not have it, and the verify path must not require network access).
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
else
    echo "verify.sh: staticcheck not installed; skipping (CI runs it)" >&2
fi
go test "$@" ./...
go test -race "$@" ./internal/experiment/... ./internal/sim/...
# Bench smoke: every benchmark must run once without failing (full runs and
# the BENCH_2.json report come from scripts/bench.sh).
go test -run '^$' -bench . -benchtime 1x ./...
